//! The `--json` emitter's contract, checked with the real JSON parser
//! the rest of the workspace uses: output is valid JSON, the schema
//! fields are present with the right types, and findings round-trip
//! losslessly.

use ccs_lint::{json, Finding, Report, RULES};
use serde_json::Value;

fn sample_report() -> Report {
    Report {
        files_scanned: 7,
        findings: vec![
            Finding {
                file: "crates/ccs-core/src/demo.rs".to_string(),
                line: 3,
                rule: "no-unchecked-unwrap",
                message: "`.unwrap()` with \"quotes\", a \\ backslash,\nand a newline".to_string(),
            },
            Finding {
                file: "crates/ccs-report/src/lib.rs".to_string(),
                line: 0,
                rule: "lib-header",
                message: "whole-file finding".to_string(),
            },
        ],
    }
}

#[test]
fn emitted_json_parses_and_matches_the_schema() {
    let text = json::emit(&sample_report());
    let v: Value = serde_json::from_str(&text).expect("emitter output must be valid JSON");

    assert_eq!(v["version"].as_u64(), Some(1));
    assert_eq!(v["files_scanned"].as_u64(), Some(7));

    let Value::Array(rules) = &v["rules"] else {
        panic!("`rules` must be an array");
    };
    assert_eq!(rules.len(), RULES.len());
    for (entry, info) in rules.iter().zip(RULES.iter()) {
        assert_eq!(entry["id"].as_str(), Some(info.id));
        assert!(!entry["summary"].as_str().unwrap().is_empty());
        match info.escape {
            Some(tag) => assert_eq!(entry["escape"].as_str(), Some(tag)),
            None => assert!(matches!(entry["escape"], Value::Null)),
        }
    }

    let Value::Array(findings) = &v["findings"] else {
        panic!("`findings` must be an array");
    };
    assert_eq!(findings.len(), 2);
    assert_eq!(
        findings[0]["file"].as_str(),
        Some("crates/ccs-core/src/demo.rs")
    );
    assert_eq!(findings[0]["line"].as_u64(), Some(3));
    assert_eq!(findings[0]["rule"].as_str(), Some("no-unchecked-unwrap"));
    assert_eq!(
        findings[0]["message"].as_str(),
        Some("`.unwrap()` with \"quotes\", a \\ backslash,\nand a newline"),
        "escaping must round-trip through a real JSON parser"
    );
    assert_eq!(findings[1]["line"].as_u64(), Some(0));
}

#[test]
fn empty_report_is_valid_json_with_empty_findings() {
    let report = Report {
        files_scanned: 0,
        findings: Vec::new(),
    };
    let v: Value = serde_json::from_str(&json::emit(&report)).expect("valid JSON");
    assert!(matches!(&v["findings"], Value::Array(a) if a.is_empty()));
    assert!(matches!(&v["rules"], Value::Array(a) if a.len() == RULES.len()));
}

#[test]
fn real_workspace_json_is_valid_and_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root");
    let report = ccs_lint::run(root).expect("lint workspace");
    let v: Value = serde_json::from_str(&json::emit(&report)).expect("valid JSON");
    assert_eq!(
        v["files_scanned"].as_u64(),
        Some(report.files_scanned as u64)
    );
    assert!(matches!(&v["findings"], Value::Array(a) if a.is_empty()));
}

//! The burn-down gate: the repo's own sources lint clean.
//!
//! Every rule — including the determinism rules and the cross-file
//! drift passes added with the token engine — reports zero findings
//! on the tree as committed.  A failure here is the same failure
//! `cargo xtask lint` (and the CI lint job) would report; keeping it
//! in the test suite means plain `cargo test` catches it too.

use std::path::Path;

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/ccs-lint has the repo root two levels up");
    let report = ccs_lint::run(root).expect("lint the workspace");
    assert!(
        report.files_scanned > 50,
        "workspace walk looks broken: only {} files",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "the workspace must lint clean; findings:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! Property fuzzing for the lexer and the rule engine: **no input
//! panics**, and the tiling invariant holds on every input — not just
//! well-formed Rust.
//!
//! Inputs are random concatenations of adversarial fragments: lone
//! quotes, unterminated raw-string heads, block-comment halves,
//! backslashes before EOF, multi-byte characters, CRLF — the corners
//! where a hand-rolled lexer breaks.

use ccs_lint::lexer::lex;
use ccs_lint::rules::lint_source;
use ccs_lint::view::SourceFile;
use proptest::collection::vec;
use proptest::prelude::*;

/// Fragments chosen to collide: every delimiter half, prefix, and
/// escape that can open or close a lexing mode.
const FRAGMENTS: [&str; 48] = [
    "\"",
    "'",
    "r\"",
    "r#\"",
    "r##\"",
    "\"#",
    "\"##",
    "b\"",
    "br#\"",
    "c\"",
    "cr#\"",
    "b'x'",
    "'\\n'",
    "'\\''",
    "'a",
    "'static",
    "r#fn",
    "/*",
    "*/",
    "/* /* */",
    "//",
    "// INVARIANT: ok",
    "///",
    "//!",
    "\n",
    "\r\n",
    "\\",
    "\\\"",
    " ",
    "\t",
    "{",
    "}",
    "(",
    ")",
    ";",
    "::",
    "#[cfg(test)]",
    "#![warn(missing_docs)]",
    "fn f",
    "let s = ",
    ".unwrap()",
    ".expect(\"x\")",
    "probe.emit(",
    "if P::ACTIVE {",
    "0x1F_u32",
    "1.5e-3",
    "\u{3c0}",
    "\u{1F980}",
];

/// Paths covering every rule scope the engine distinguishes.
const RELS: [&str; 6] = [
    "crates/ccs-core/src/demo.rs",
    "crates/ccs-core/src/remap.rs",
    "crates/ccs-report/src/lib.rs",
    "crates/ccs-workloads/src/demo.rs",
    "crates/ccs-bench/src/bin/bench_hotpath.rs",
    "src/cli.rs",
];

fn assemble(parts: &[usize]) -> String {
    parts.iter().map(|&i| FRAGMENTS[i]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(768))]

    #[test]
    fn lexer_tiles_arbitrary_fragment_soup(
        parts in vec(0usize..FRAGMENTS.len(), 0..48),
    ) {
        let src = assemble(&parts);
        let tokens = lex(&src);
        let mut pos = 0usize;
        for t in &tokens {
            prop_assert_eq!(t.start, pos, "gap/overlap in {:?}", src);
            prop_assert!(t.end > t.start, "empty token in {:?}", src);
            pos = t.end;
        }
        prop_assert_eq!(pos, src.len(), "tiling stops short in {:?}", src);
        let rebuilt: String = tokens.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(rebuilt, src);
    }

    #[test]
    fn views_never_panic_and_stay_aligned(
        parts in vec(0usize..FRAGMENTS.len(), 0..48),
    ) {
        let src = assemble(&parts);
        let sf = SourceFile::new("fuzz.rs", &src);
        prop_assert_eq!(sf.num_lines(), src.split('\n').count());
        prop_assert_eq!(sf.test_mask.len(), sf.num_lines());
        for i in 0..sf.num_lines() {
            // The three views never disagree about line length by
            // more than padding (all are <= the original line).
            let orig_len = src.split('\n').nth(i).map_or(0, str::len);
            prop_assert!(sf.code_lines[i].len() <= orig_len);
            prop_assert!(sf.comment_lines[i].len() <= orig_len);
            prop_assert!(sf.string_lines[i].len() <= orig_len);
        }
        // Structural masks on arbitrary soup must not panic either.
        let _ = sf.fn_body_mask(&src, &["f", "distance"]);
        let _ = sf.active_guard_mask(&src);
    }

    #[test]
    fn rules_never_panic_on_fragment_soup(
        parts in vec(0usize..FRAGMENTS.len(), 0..48),
        which in 0usize..RELS.len(),
    ) {
        let src = assemble(&parts);
        // Whatever the findings are, producing them must not panic,
        // and every finding must carry a sane line number.
        for f in lint_source(RELS[which], &src) {
            prop_assert!(f.line <= src.split('\n').count());
        }
    }

    #[test]
    fn truncation_never_panics(
        parts in vec(0usize..FRAGMENTS.len(), 1..24),
        cut_pct in 0usize..100,
    ) {
        // Cutting a valid-ish stream mid-token exercises every
        // unterminated-input path (string, raw string, block comment,
        // char, escape before EOF).
        let src = assemble(&parts);
        let cut = src.len() * cut_pct / 100;
        let cut = (0..=cut).rev().find(|&i| src.is_char_boundary(i)).unwrap_or(0);
        let truncated = &src[..cut];
        let tokens = lex(truncated);
        let total: usize = tokens.iter().map(|t| t.end - t.start).sum();
        prop_assert_eq!(total, truncated.len());
        let _ = SourceFile::new("fuzz.rs", truncated);
        let _ = lint_source("crates/ccs-core/src/demo.rs", truncated);
    }
}

//! **Frozen parity fixture — do not extend.**  This is the retired
//! line-based lint engine, kept verbatim as the reference point for
//! `tests/parity.rs`: the token engine must report a superset of this
//! engine's findings on the real workspace (modulo the allowlisted
//! false positives that line heuristics produce).  New rules go in
//! `src/rules.rs`, not here.
//!
//! The lint engine: line-based, std-only source checks enforcing the
//! repo's panic-hygiene and documentation policies (see `DESIGN.md`
//! §"Diagnostics", "Pass C").
//!
//! Rules:
//!
//! * `no-unchecked-unwrap` — `.unwrap()` / `.expect(` in *non-test*
//!   code of the scheduler hot crates (`ccs-core`, `ccs-schedule`)
//!   must carry a nearby `// INVARIANT:` comment explaining why the
//!   panic is unreachable;
//! * `no-truncating-cast` — no truncating `as` casts in the remap hot
//!   path (`ccs-core/src/remap.rs`); use `try_from` with an
//!   `INVARIANT` note instead;
//! * `lib-header` — every crate root under `crates/*/src/lib.rs`
//!   declares `#![warn(missing_docs)]` and `#![forbid(unsafe_code)]`;
//! * `no-println-in-libs` — no `println!` / `eprintln!` / `print!` /
//!   `eprint!` in library code (`crates/*/src/**` and the root
//!   `src/`): libraries report through return values, the `ccs-trace`
//!   event stream, or `Display` impls — never by writing to the
//!   process's stdio.  Binaries (`src/bin/**`, the root
//!   `src/main.rs`) and `crates/xtask` are exempt, as are tests;
//! * `probe-emit-guarded` — every `probe.emit(..)` site in the
//!   scheduler hot crate (`ccs-core/src/**`, non-test) must sit inside
//!   an `if P::ACTIVE` block, so the `Off` probe monomorphizes every
//!   emission (argument construction included) away and the traced and
//!   untraced hot paths stay the same code;
//! * `hot-path-no-assert` — no `assert!` / `assert_eq!` / `assert_ne!`
//!   / `panic!` inside the innermost-loop functions of the candidate
//!   scan (`best_position` in `ccs-core/src/remap.rs`, `earliest_free`
//!   in `ccs-schedule/src/table.rs`, `Machine::distance` in
//!   `ccs-topology/src/machine.rs`): release builds must stay
//!   branch-free there.  `debug_assert!` (which compiles away) is the
//!   sanctioned alternative;
//! * `no-unordered-iteration` — no `HashMap` / `HashSet` in non-test
//!   library code (same scope as `no-println-in-libs`): their
//!   iteration order is nondeterministic, and most library output here
//!   ends up serialized, fingerprinted, or diffed byte-for-byte.  Use
//!   `BTreeMap` / `BTreeSet` (or collect-and-sort), or justify a
//!   lookup-only map with a nearby `// ORDERED:` comment explaining
//!   why its order never escapes;
//! * `escaped-html-output` — string formatting into HTML/SVG content
//!   position (a `>{` interpolation in a literal) inside the report
//!   renderers (`ccs-report/src/**`, `ccs-profile/src/render.rs`) must
//!   route the value through the one audited `esc(..)` helper on or
//!   near the same statement; `report-check` re-verifies the artifact,
//!   this rule catches the source-side slip before it ships.

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Rule identifier.
    pub rule: &'static str,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Rule identifier for unchecked `.unwrap()` / `.expect(`.
pub const RULE_UNWRAP: &str = "no-unchecked-unwrap";
/// Rule identifier for truncating `as` casts in the remap hot path.
pub const RULE_CAST: &str = "no-truncating-cast";
/// Rule identifier for missing crate-root lint headers.
pub const RULE_HEADER: &str = "lib-header";
/// Rule identifier for stdio print macros in library code.
pub const RULE_PRINT: &str = "no-println-in-libs";
/// Rule identifier for unguarded `probe.emit(` sites in `ccs-core`.
pub const RULE_PROBE: &str = "probe-emit-guarded";
/// Rule identifier for panicking macros in hot-path functions.
pub const RULE_HOT_ASSERT: &str = "hot-path-no-assert";
/// Rule identifier for unordered hash containers in library code.
pub const RULE_UNORDERED: &str = "no-unordered-iteration";
/// Rule identifier for unescaped interpolation into HTML/SVG output.
pub const RULE_ESCAPED: &str = "escaped-html-output";

/// Sources whose string formatting lands in HTML/SVG artifacts and
/// falls under [`RULE_ESCAPED`]: the report crate (single-run, diff
/// and grid pages), the profile renderer, and the bench crate's grid
/// dashboard / trajectory sparkline module.
const HTML_OUTPUT_ROOTS: [&str; 3] = [
    "crates/ccs-report/src",
    "crates/ccs-profile/src/render.rs",
    "crates/ccs-bench/src/report.rs",
];

/// Containers whose iteration order is nondeterministic.
const UNORDERED_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// The innermost-loop functions that must stay panic-free in release
/// builds, as `(file, function)` pairs.
const HOT_PATH_FNS: [(&str, &str); 3] = [
    ("crates/ccs-core/src/remap.rs", "best_position"),
    ("crates/ccs-schedule/src/table.rs", "earliest_free"),
    ("crates/ccs-topology/src/machine.rs", "distance"),
];

/// Panicking macros banned inside hot-path functions.  Matched at a
/// token boundary, so `debug_assert!(` — whose release-build expansion
/// is empty — does not trip the `assert!(` pattern.
const PANIC_MACROS: [&str; 4] = ["assert!(", "assert_eq!(", "assert_ne!(", "panic!("];

/// The crate whose emission sites fall under [`RULE_PROBE`].
const PROBE_ROOT: &str = "crates/ccs-core/src";

/// Print macros banned in library code, longest pattern first so the
/// reported name is exact (`eprintln!(` contains `println!(`).
const PRINT_MACROS: [&str; 4] = ["eprintln!(", "println!(", "eprint!(", "print!("];

/// Crates whose non-test code falls under [`RULE_UNWRAP`].
const PANIC_HYGIENE_ROOTS: [&str; 2] = ["crates/ccs-core/src", "crates/ccs-schedule/src"];

/// The one file under [`RULE_CAST`].
const CAST_FILE: &str = "crates/ccs-core/src/remap.rs";

/// Truncating integer casts (widening casts and `as usize`/`as u64`
/// on u32 sources are fine; these can silently drop bits).
const TRUNCATING_CASTS: [&str; 6] = [
    " as u8", " as u16", " as u32", " as i8", " as i16", " as i32",
];

/// How many lines above a flagged call an `INVARIANT:` comment is
/// accepted as justification.
const JUSTIFICATION_WINDOW: usize = 4;

/// Lints one source file given its repo-relative path (with `/`
/// separators) and contents.  Pure function — unit-testable on
/// fixture strings.
pub fn lint_source(rel: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    if rel.ends_with("/src/lib.rs") && !rel.starts_with("vendor/") {
        lint_lib_header(rel, text, &mut out);
    }
    let hygiene = PANIC_HYGIENE_ROOTS.iter().any(|p| rel.starts_with(p));
    let cast = rel == CAST_FILE;
    let print = print_rule_applies(rel);
    // Unordered-container hygiene shares the library-code scope of the
    // print rule: the same files feed serialized or fingerprinted
    // output, where hash iteration order would break byte-stability.
    let unordered = print;
    let probe = rel.starts_with(PROBE_ROOT);
    let html_out = HTML_OUTPUT_ROOTS.iter().any(|p| rel.starts_with(p));
    let hot_fns: Vec<&str> = HOT_PATH_FNS
        .iter()
        .filter(|(file, _)| *file == rel)
        .map(|&(_, name)| name)
        .collect();
    if !hygiene && !cast && !print && !probe && !html_out && hot_fns.is_empty() {
        return out;
    }

    let lines: Vec<&str> = text.lines().collect();
    let test_mask = test_block_mask(&lines);
    let guard_mask = if probe {
        probe_guard_mask(&lines)
    } else {
        Vec::new()
    };
    let hot_mask = hot_fn_mask(&lines, &hot_fns);
    for (i, raw) in lines.iter().enumerate() {
        if test_mask[i] {
            continue;
        }
        let code = strip_line_comment(raw);
        if probe && code.contains("probe.emit(") && !guard_mask[i] {
            out.push(Finding {
                file: rel.to_string(),
                line: i + 1,
                rule: RULE_PROBE,
                message: "`probe.emit(..)` outside an `if P::ACTIVE` guard; wrap the \
                          emission (and its argument construction) so the `Off` probe \
                          compiles the site away"
                    .to_string(),
            });
        }
        if hygiene {
            if let Some(call) = unchecked_call(code) {
                let lo = i.saturating_sub(JUSTIFICATION_WINDOW);
                let justified = lines[lo..=i].iter().any(|l| l.contains("INVARIANT:"));
                if !justified {
                    out.push(Finding {
                        file: rel.to_string(),
                        line: i + 1,
                        rule: RULE_UNWRAP,
                        message: format!(
                            "`{call}` in non-test scheduler code without an \
                             `// INVARIANT:` justification; return a typed error \
                             or document why the panic is unreachable"
                        ),
                    });
                }
            }
        }
        if print {
            if let Some(mac) = PRINT_MACROS.iter().find(|pat| code.contains(*pat)) {
                out.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: RULE_PRINT,
                    message: format!(
                        "`{}` in library code; report through return values, \
                         the ccs-trace event stream, or a `Display` impl instead",
                        mac.trim_end_matches('(')
                    ),
                });
            }
        }
        if unordered && !code.trim_start().starts_with("use ") {
            if let Some(ty) = UNORDERED_TYPES.iter().find(|t| contains_type(code, t)) {
                let lo = i.saturating_sub(JUSTIFICATION_WINDOW);
                let justified = lines[lo..=i].iter().any(|l| l.contains("ORDERED:"));
                if !justified {
                    out.push(Finding {
                        file: rel.to_string(),
                        line: i + 1,
                        rule: RULE_UNORDERED,
                        message: format!(
                            "`{ty}` in library code: its iteration order is \
                             nondeterministic and this codebase's output is \
                             byte-stable — use `BTree{}` (or collect-and-sort), \
                             or add an `// ORDERED:` comment explaining why the \
                             order never escapes",
                            &ty[4..]
                        ),
                    });
                }
            }
        }
        if html_out && code.contains(">{") {
            let lo = i.saturating_sub(JUSTIFICATION_WINDOW);
            let hi = (i + JUSTIFICATION_WINDOW).min(lines.len() - 1);
            let escaped = lines[lo..=hi]
                .iter()
                .any(|l| l.contains("esc(") || l.contains("ESCAPED:"));
            if !escaped {
                out.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: RULE_ESCAPED,
                    message: "interpolation into HTML/SVG content position without the \
                              audited `esc(..)` helper nearby; route the value through \
                              `ccs_profile::render::esc` (or justify with `// ESCAPED:`)"
                        .to_string(),
                });
            }
        }
        if hot_mask[i] {
            if let Some(mac) = PANIC_MACROS.iter().find(|pat| contains_token(code, pat)) {
                out.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: RULE_HOT_ASSERT,
                    message: format!(
                        "`{}` inside a hot-path function; release builds must stay \
                         branch-free here — use `debug_assert!` or hoist the check \
                         to construction time",
                        mac.trim_end_matches('(')
                    ),
                });
            }
        }
        if cast {
            for pat in TRUNCATING_CASTS {
                if code.contains(pat) {
                    out.push(Finding {
                        file: rel.to_string(),
                        line: i + 1,
                        rule: RULE_CAST,
                        message: format!(
                            "truncating `{}` cast in the remap hot path; \
                             use `try_from` and handle (or justify) the failure",
                            pat.trim_start()
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Whether `rel` is library code under [`RULE_PRINT`]: any `.rs` file
/// in `crates/*/src/**` or the root `src/`, excluding binary targets
/// (`src/bin/**`, the root `src/main.rs`), the `xtask` tool itself,
/// and vendored stand-ins.
fn print_rule_applies(rel: &str) -> bool {
    if rel.starts_with("crates/xtask/") || rel.starts_with("vendor/") {
        return false;
    }
    if rel.contains("/src/bin/") {
        return false;
    }
    if rel.starts_with("crates/") {
        return rel.contains("/src/");
    }
    rel.starts_with("src/") && rel != "src/main.rs"
}

/// Checks the crate-root lint headers.
fn lint_lib_header(rel: &str, text: &str, out: &mut Vec<Finding>) {
    for required in ["#![warn(missing_docs)]", "#![forbid(unsafe_code)]"] {
        if !text.contains(required) {
            out.push(Finding {
                file: rel.to_string(),
                line: 0,
                rule: RULE_HEADER,
                message: format!("crate root does not declare `{required}`"),
            });
        }
    }
}

/// The unchecked call present in a (comment-stripped) code line, if
/// any.  `unwrap_or*` and `expect_err` are checked alternatives, not
/// panics on the happy path's inverse, and are allowed.
fn unchecked_call(code: &str) -> Option<&'static str> {
    if code.contains(".unwrap()") {
        return Some(".unwrap()");
    }
    // `.expect(` but not `.expect_err(`.
    let mut rest = code;
    while let Some(pos) = rest.find(".expect") {
        let after = &rest[pos + ".expect".len()..];
        if after.starts_with('(') {
            return Some(".expect(");
        }
        rest = after;
    }
    None
}

/// Strips a trailing `//` line comment (naive: does not parse string
/// literals, which is fine for this codebase's style).
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(ix) => &line[..ix],
        None => line,
    }
}

/// `true` when `code` contains `pat` at a token boundary (the
/// preceding character is not part of an identifier) — so
/// `debug_assert!(` does not count as an `assert!(` occurrence.
fn contains_token(code: &str, pat: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let abs = start + pos;
        let boundary = code[..abs]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary {
            return true;
        }
        start = abs + pat.len();
    }
    false
}

/// `true` when `code` mentions the type name `pat` as a whole token:
/// bounded on both sides by non-identifier characters, so `HashMap`
/// does not match inside `MyHashMapExt`.
fn contains_type(code: &str, pat: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let abs = start + pos;
        let before = code[..abs]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after = code[abs + pat.len()..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before && after {
            return true;
        }
        start = abs + pat.len();
    }
    false
}

/// `true` when the (comment-stripped) line declares a function named
/// exactly `name`: the text `fn name` followed by `(` or `<`, so
/// `fn distance(` matches but `fn try_distance(` and
/// `fn distance_check(` do not.
fn declares_fn(line: &str, name: &str) -> bool {
    let code = strip_line_comment(line);
    let pat = format!("fn {name}");
    let mut rest = code;
    while let Some(pos) = rest.find(&pat) {
        let after = &rest[pos + pat.len()..];
        if matches!(after.chars().next(), Some('(' | '<')) {
            return true;
        }
        rest = after;
    }
    false
}

/// `mask[i] == true` for every line inside one of the named functions
/// (signature line included), found by brace counting from the
/// declaration — same technique as [`test_block_mask`].
fn hot_fn_mask(lines: &[&str], names: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    if names.is_empty() {
        return mask;
    }
    let mut i = 0;
    while i < lines.len() {
        if !names.iter().any(|n| declares_fn(lines[i], n)) {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            mask[j] = true;
            for ch in strip_line_comment(lines[j]).chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// `mask[i] == true` for every line inside an `if P::ACTIVE` block
/// (guard line included), found by brace counting from the guard —
/// same technique as [`test_block_mask`].  `else` arms of a guarded
/// `if` are not masked, which is what we want: an emission in the
/// "probe inactive" arm would be exactly the bug the rule exists to
/// catch.
fn probe_guard_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !strip_line_comment(lines[i]).contains("if P::ACTIVE") {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            mask[j] = true;
            for ch in strip_line_comment(lines[j]).chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// `mask[i] == true` for every line inside a `#[cfg(test)]` item
/// (attribute line included), found by brace counting from the
/// attribute.
fn test_block_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].trim_start().starts_with("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            mask[j] = true;
            for ch in strip_line_comment(lines[j]).chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    const HYGIENE_FILE: &str = "crates/ccs-core/src/demo.rs";

    #[test]
    fn bare_unwrap_is_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let f = lint_source(HYGIENE_FILE, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_UNWRAP);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn bare_expect_is_flagged_but_expect_err_is_not() {
        let src = "fn f(x: Result<u32, ()>) -> u32 {\n    x.expect(\"boom\")\n}\n";
        assert_eq!(lint_source(HYGIENE_FILE, src).len(), 1);
        let src = "fn f(x: Result<u32, ()>) {\n    let _ = x.expect_err(\"fine\");\n}\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
    }

    #[test]
    fn invariant_comment_justifies() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   // INVARIANT: x is Some by construction (see caller).\n    \
                   x.unwrap()\n}\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
        // Same-line justification also accepted.
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // INVARIANT: non-empty\n}\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
    }

    #[test]
    fn unwrap_or_family_is_allowed() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()\n}\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_skipped() {
        let src = "fn ok() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n    \
                   #[test]\n    \
                   fn t() { Some(1).unwrap(); }\n\
                   }\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
    }

    #[test]
    fn unwrap_after_test_block_is_still_flagged() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n    \
                   fn t() { Some(1).unwrap(); }\n\
                   }\n\
                   fn g() { Some(1).unwrap(); }\n";
        let f = lint_source(HYGIENE_FILE, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn commented_unwrap_is_ignored() {
        let src = "fn f() {\n    // calls .unwrap() eventually\n}\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
    }

    #[test]
    fn other_crates_are_not_under_the_unwrap_rule() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_source("crates/ccs-workloads/src/demo.rs", src).is_empty());
    }

    #[test]
    fn truncating_cast_in_remap_is_flagged() {
        let src = "fn f(x: i64) -> u32 {\n    x as u32\n}\n";
        let f = lint_source("crates/ccs-core/src/remap.rs", src);
        assert!(f.iter().any(|f| f.rule == RULE_CAST && f.line == 2));
        // Widening / usize casts are fine.
        let src = "fn f(x: u32) -> u64 {\n    let _ = x as usize;\n    x as u64\n}\n";
        let f = lint_source("crates/ccs-core/src/remap.rs", src);
        assert!(f.iter().all(|f| f.rule != RULE_CAST), "{f:?}");
    }

    #[test]
    fn print_macros_in_library_code_are_flagged() {
        let src = "fn f() {\n    println!(\"hi\");\n    eprintln!(\"oh\");\n}\n";
        let f = lint_source("crates/ccs-workloads/src/demo.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == RULE_PRINT));
        assert!(f[0].message.contains("`println!`"));
        assert!(f[1].message.contains("`eprintln!`"));
        // Root library files are covered too.
        assert_eq!(lint_source("src/cli.rs", src).len(), 2);
    }

    #[test]
    fn print_macros_in_binaries_tests_and_xtask_are_allowed() {
        let src = "fn main() {\n    println!(\"hi\");\n}\n";
        assert!(lint_source("crates/ccs-bench/src/bin/bench_hotpath.rs", src).is_empty());
        assert!(lint_source("src/main.rs", src).is_empty());
        assert!(lint_source("crates/xtask/src/main.rs", src).is_empty());
        assert!(lint_source("crates/ccs-core/tests/e2e.rs", src).is_empty());
        let in_test = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    \
                       fn t() { println!(\"dbg\"); }\n}\n";
        assert!(lint_source("crates/ccs-workloads/src/demo.rs", in_test).is_empty());
        // Commented mentions are fine.
        let comment = "fn f() {\n    // never println!(..) here\n}\n";
        assert!(lint_source("crates/ccs-workloads/src/demo.rs", comment).is_empty());
    }

    #[test]
    fn unguarded_probe_emit_is_flagged() {
        let src = "fn f<P: Probe>(probe: &mut P) {\n    probe.emit(Event::Rotate { nodes: vec![] });\n}\n";
        let f = lint_source("crates/ccs-core/src/demo.rs", src);
        assert!(
            f.iter().any(|f| f.rule == RULE_PROBE && f.line == 2),
            "{f:?}"
        );
        // Other crates may structure their probes differently.
        assert!(lint_source("crates/ccs-trace/src/demo.rs", src)
            .iter()
            .all(|f| f.rule != RULE_PROBE));
    }

    #[test]
    fn guarded_probe_emit_is_allowed() {
        let multi = "fn f<P: Probe>(probe: &mut P) {\n    \
                     if P::ACTIVE {\n        \
                     probe.emit(Event::Rotate { nodes: vec![] });\n    \
                     }\n}\n";
        assert!(lint_source("crates/ccs-core/src/demo.rs", multi)
            .iter()
            .all(|f| f.rule != RULE_PROBE));
        let single = "fn f<P: Probe>(probe: &mut P) {\n    if P::ACTIVE { probe.emit(ev()); }\n}\n";
        assert!(lint_source("crates/ccs-core/src/demo.rs", single)
            .iter()
            .all(|f| f.rule != RULE_PROBE));
        // An emission *after* the guarded block is unguarded again.
        let after = "fn f<P: Probe>(probe: &mut P) {\n    \
                     if P::ACTIVE {\n        \
                     probe.emit(ev());\n    \
                     }\n    \
                     probe.emit(ev());\n}\n";
        let f = lint_source("crates/ccs-core/src/demo.rs", after);
        assert!(
            f.iter().any(|f| f.rule == RULE_PROBE && f.line == 5),
            "{f:?}"
        );
        // Test code is exempt.
        let in_test = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    \
                       fn t<P: Probe>(probe: &mut P) { probe.emit(ev()); }\n}\n";
        assert!(lint_source("crates/ccs-core/src/demo.rs", in_test)
            .iter()
            .all(|f| f.rule != RULE_PROBE));
    }

    #[test]
    fn assert_in_hot_path_fn_is_flagged() {
        let src = "fn best_position<P: Probe>(x: u32) -> u32 {\n    \
                   assert!(x > 0);\n    \
                   x\n}\n";
        let f = lint_source("crates/ccs-core/src/remap.rs", src);
        assert!(
            f.iter().any(|f| f.rule == RULE_HOT_ASSERT && f.line == 2),
            "{f:?}"
        );
        let src = "pub fn earliest_free(&self) -> u32 {\n    panic!(\"no slot\");\n}\n";
        let f = lint_source("crates/ccs-schedule/src/table.rs", src);
        assert!(
            f.iter().any(|f| f.rule == RULE_HOT_ASSERT && f.line == 2),
            "{f:?}"
        );
        let src = "pub fn distance(&self, a: Pe, b: Pe) -> u32 {\n    \
                   assert_eq!(a.0, b.0);\n    0\n}\n";
        let f = lint_source("crates/ccs-topology/src/machine.rs", src);
        assert!(
            f.iter().any(|f| f.rule == RULE_HOT_ASSERT && f.line == 2),
            "{f:?}"
        );
    }

    #[test]
    fn debug_assert_in_hot_path_fn_is_allowed() {
        let src = "pub fn distance(&self, a: Pe, b: Pe) -> u32 {\n    \
                   debug_assert!(a.0 < 4);\n    \
                   debug_assert_eq!(self.n, 4);\n    0\n}\n";
        let f = lint_source("crates/ccs-topology/src/machine.rs", src);
        assert!(f.iter().all(|f| f.rule != RULE_HOT_ASSERT), "{f:?}");
    }

    #[test]
    fn asserts_outside_hot_path_fns_are_allowed() {
        // Same file, different function: not under the rule.
        let src = "pub fn try_distance(&self) -> u32 {\n    assert!(true);\n    0\n}\n\
                   fn rebuild(&mut self) {\n    assert!(self.ok());\n}\n";
        let f = lint_source("crates/ccs-topology/src/machine.rs", src);
        assert!(f.iter().all(|f| f.rule != RULE_HOT_ASSERT), "{f:?}");
        // A hot-path fn name in an uncovered file is not under the rule.
        let src = "fn best_position() {\n    assert!(true);\n}\n";
        assert!(lint_source("crates/ccs-bench/src/lib.rs", src)
            .iter()
            .all(|f| f.rule != RULE_HOT_ASSERT));
    }

    #[test]
    fn assert_after_hot_path_fn_is_allowed() {
        let src = "pub fn earliest_free(&self) -> u32 {\n    \
                   self.cursor\n}\n\
                   fn other(&self) {\n    assert!(self.ok());\n}\n";
        let f = lint_source("crates/ccs-schedule/src/table.rs", src);
        assert!(f.iter().all(|f| f.rule != RULE_HOT_ASSERT), "{f:?}");
    }

    #[test]
    fn unordered_containers_in_library_code_are_flagged() {
        let src = "fn f() {\n    let mut m: std::collections::HashMap<u32, u32> = \
                   std::collections::HashMap::new();\n    m.insert(1, 2);\n}\n";
        let f = lint_source("crates/ccs-workloads/src/demo.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_UNORDERED);
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("BTreeMap"), "{}", f[0].message);
        let src =
            "fn f() {\n    let s = std::collections::HashSet::<u32>::new();\n    drop(s);\n}\n";
        let f = lint_source("src/cli.rs", src);
        assert!(f.iter().any(|f| f.rule == RULE_UNORDERED), "{f:?}");
    }

    #[test]
    fn ordered_comment_justifies_hash_containers() {
        let above = "fn f() {\n    \
                     // ORDERED: lookup-only; never iterated, order cannot escape.\n    \
                     let m = std::collections::HashMap::<u32, u32>::new();\n    drop(m);\n}\n";
        assert!(lint_source("crates/ccs-workloads/src/demo.rs", above).is_empty());
        let same_line =
            "fn f() {\n    let m = HashMap::<u32, u32>::new(); // ORDERED: lookup-only\n    drop(m);\n}\n";
        assert!(lint_source("crates/ccs-workloads/src/demo.rs", same_line).is_empty());
    }

    #[test]
    fn unordered_rule_skips_imports_tests_binaries_and_btrees() {
        let import = "use std::collections::HashMap;\n\nfn f() {}\n";
        assert!(lint_source("crates/ccs-workloads/src/demo.rs", import).is_empty());
        let src = "fn f() {\n    let m = std::collections::HashMap::<u32, u32>::new();\n    drop(m);\n}\n";
        assert!(lint_source("crates/ccs-bench/src/bin/bench_hotpath.rs", src).is_empty());
        assert!(lint_source("src/main.rs", src).is_empty());
        let in_test = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    \
                       fn t() { let _ = std::collections::HashMap::<u32, u32>::new(); }\n}\n";
        assert!(lint_source("crates/ccs-workloads/src/demo.rs", in_test).is_empty());
        let btree = "fn f() {\n    let m = std::collections::BTreeMap::<u32, u32>::new();\n    drop(m);\n}\n";
        assert!(lint_source("crates/ccs-workloads/src/demo.rs", btree).is_empty());
        // A type that merely contains the name is not a hit.
        let ext = "struct MyHashMapExt;\nfn f(_: MyHashMapExt) {}\n";
        assert!(lint_source("crates/ccs-workloads/src/demo.rs", ext).is_empty());
    }

    #[test]
    fn unescaped_html_interpolation_is_flagged() {
        let src = "fn f(out: &mut String, v: &str) {\n    \
                   let _ = write!(out, \"<td>{v}</td>\");\n}\n";
        let f = lint_source("crates/ccs-report/src/lib.rs", src);
        assert!(
            f.iter().any(|f| f.rule == RULE_ESCAPED && f.line == 2),
            "{f:?}"
        );
        // The profile's SVG renderer is in scope too.
        let f = lint_source("crates/ccs-profile/src/render.rs", src);
        assert!(f.iter().any(|f| f.rule == RULE_ESCAPED), "{f:?}");
    }

    #[test]
    fn esc_on_or_near_the_statement_satisfies_the_rule() {
        let same = "fn f(out: &mut String, v: &str) {\n    \
                    let _ = write!(out, \"<td>{}</td>\", esc(v));\n}\n";
        assert!(lint_source("crates/ccs-report/src/lib.rs", same)
            .iter()
            .all(|f| f.rule != RULE_ESCAPED));
        // Multi-line write!: the literal and the esc() call are on
        // different lines, inside the justification window.
        let near = "fn f(out: &mut String, v: &str) {\n    \
                    let _ = write!(\n        out,\n        \
                    \"<td>{}</td>\",\n        esc(v)\n    );\n}\n";
        assert!(lint_source("crates/ccs-report/src/lib.rs", near)
            .iter()
            .all(|f| f.rule != RULE_ESCAPED));
        let justified = "fn f(out: &mut String, n: u32) {\n    \
                         // ESCAPED: n is a number, no markup characters possible\n    \
                         let _ = write!(out, \"<td>{n}</td>\");\n}\n";
        assert!(lint_source("crates/ccs-report/src/lib.rs", justified)
            .iter()
            .all(|f| f.rule != RULE_ESCAPED));
    }

    #[test]
    fn escape_rule_scope_excludes_other_crates_and_tests() {
        let src = "fn f(out: &mut String, v: &str) {\n    \
                   let _ = write!(out, \"<td>{v}</td>\");\n}\n";
        assert!(lint_source("crates/ccs-profile/src/lib.rs", src)
            .iter()
            .all(|f| f.rule != RULE_ESCAPED));
        assert!(lint_source("src/cli.rs", src)
            .iter()
            .all(|f| f.rule != RULE_ESCAPED));
        let in_test = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    \
                       fn t() { let _ = format!(\"<td>{}</td>\", 1); }\n}\n";
        assert!(lint_source("crates/ccs-report/src/lib.rs", in_test)
            .iter()
            .all(|f| f.rule != RULE_ESCAPED));
    }

    #[test]
    fn lib_header_rule() {
        let good = "//! docs\n#![warn(missing_docs)]\n#![forbid(unsafe_code)]\n";
        assert!(lint_source("crates/ccs-foo/src/lib.rs", good).is_empty());
        let bad = "//! docs\n";
        let f = lint_source("crates/ccs-foo/src/lib.rs", bad);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == RULE_HEADER));
        // Vendored stand-ins are exempt.
        assert!(lint_source("vendor/serde/src/lib.rs", bad).is_empty());
    }
}

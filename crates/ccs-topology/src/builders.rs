//! Constructors for the architectures of the paper (Figure 5) plus a few
//! natural extensions.

use crate::machine::Machine;
use crate::pe::Pe;

impl Machine {
    /// Linear array of `n` PEs: `pe1 - pe2 - ... - peN` (Figure 5a).
    pub fn linear_array(n: usize) -> Machine {
        let links: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Machine::from_links(format!("Linear Array {n}"), n, &links)
    }

    /// Bidirectional ring of `n` PEs (Figure 5b).
    pub fn ring(n: usize) -> Machine {
        assert!(n >= 1);
        let mut links: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        if n > 2 {
            links.push((n - 1, 0));
        }
        Machine::from_links(format!("Ring {n}"), n, &links)
    }

    /// Completely connected machine of `n` PEs (Figure 5c).
    pub fn complete(n: usize) -> Machine {
        let mut links = Vec::with_capacity(n * (n - 1) / 2);
        for a in 0..n {
            for b in (a + 1)..n {
                links.push((a, b));
            }
        }
        Machine::from_links(format!("Completely Connected {n}"), n, &links)
    }

    /// 2-D mesh with `rows * cols` PEs, numbered row-major (Figure 5d).
    pub fn mesh(rows: usize, cols: usize) -> Machine {
        let n = rows * cols;
        let mut links = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if c + 1 < cols {
                    links.push((i, i + 1));
                }
                if r + 1 < rows {
                    links.push((i, i + cols));
                }
            }
        }
        Machine::from_links(format!("2-D Mesh {rows}x{cols}"), n, &links)
    }

    /// 2-D torus (mesh with wrap-around links), numbered row-major.
    pub fn torus(rows: usize, cols: usize) -> Machine {
        let n = rows * cols;
        let mut links = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if cols > 1 {
                    links.push((i, r * cols + (c + 1) % cols));
                }
                if rows > 1 {
                    links.push((i, ((r + 1) % rows) * cols + c));
                }
            }
        }
        Machine::from_links(format!("Torus {rows}x{cols}"), n, &links)
    }

    /// `dim`-cube with `2^dim` PEs; PEs are adjacent when their indices
    /// differ in exactly one bit (Figure 5e; `dim = 3` is the paper's
    /// 3-cube experiment machine).
    pub fn hypercube(dim: u32) -> Machine {
        let n = 1usize << dim;
        let mut links = Vec::new();
        for a in 0..n {
            for bit in 0..dim {
                let b = a ^ (1usize << bit);
                if a < b {
                    links.push((a, b));
                }
            }
        }
        Machine::from_links(format!("{dim}-cube"), n, &links)
    }

    /// Star: PE 0 is the hub, all others are leaves.
    pub fn star(n: usize) -> Machine {
        let links: Vec<_> = (1..n).map(|i| (0, i)).collect();
        Machine::from_links(format!("Star {n}"), n, &links)
    }

    /// Complete binary tree with `n` PEs, numbered level order
    /// (PE `i` has children `2i+1`, `2i+2`).
    pub fn binary_tree(n: usize) -> Machine {
        let mut links = Vec::new();
        for i in 0..n {
            for child in [2 * i + 1, 2 * i + 2] {
                if child < n {
                    links.push((i, child));
                }
            }
        }
        Machine::from_links(format!("Binary Tree {n}"), n, &links)
    }

    /// The five 8-PE experiment machines of the paper's §5 (Figure 8),
    /// in the paper's order: linear array, ring, completely connected,
    /// 2-D mesh (4x2), 3-cube.
    pub fn paper_suite() -> Vec<Machine> {
        vec![
            Machine::linear_array(8),
            Machine::ring(8),
            Machine::complete(8),
            Machine::mesh(4, 2),
            Machine::hypercube(3),
        ]
    }
}

/// Closed-form hop distances, used to cross-check the BFS matrices.
pub mod closed_form {
    use super::Pe;

    /// Linear array distance `|a - b|`.
    pub fn linear(a: Pe, b: Pe) -> u32 {
        a.0.abs_diff(b.0)
    }

    /// Ring distance `min(|a-b|, n - |a-b|)`.
    pub fn ring(n: usize, a: Pe, b: Pe) -> u32 {
        let d = a.0.abs_diff(b.0);
        d.min(n as u32 - d)
    }

    /// Completely connected: 0 or 1.
    pub fn complete(a: Pe, b: Pe) -> u32 {
        u32::from(a != b)
    }

    /// Row-major mesh Manhattan distance.
    pub fn mesh(cols: usize, a: Pe, b: Pe) -> u32 {
        let (ar, ac) = (a.index() / cols, a.index() % cols);
        let (br, bc) = (b.index() / cols, b.index() % cols);
        (ar.abs_diff(br) + ac.abs_diff(bc)) as u32
    }

    /// Torus wrap-around Manhattan distance.
    pub fn torus(rows: usize, cols: usize, a: Pe, b: Pe) -> u32 {
        let (ar, ac) = (a.index() / cols, a.index() % cols);
        let (br, bc) = (b.index() / cols, b.index() % cols);
        let dr = ar.abs_diff(br).min(rows - ar.abs_diff(br));
        let dc = ac.abs_diff(bc).min(cols - ac.abs_diff(bc));
        (dr + dc) as u32
    }

    /// Hamming distance between PE indices.
    pub fn hypercube(a: Pe, b: Pe) -> u32 {
        (a.0 ^ b.0).count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_against(m: &Machine, f: impl Fn(Pe, Pe) -> u32) {
        for a in m.pes() {
            for b in m.pes() {
                assert_eq!(m.distance(a, b), f(a, b), "{} {a}->{b}", m.name());
            }
        }
    }

    #[test]
    fn linear_array_matches_closed_form() {
        let m = Machine::linear_array(8);
        check_against(&m, closed_form::linear);
        assert_eq!(m.diameter(), 7);
        assert_eq!(m.degree(Pe(0)), 1);
        assert_eq!(m.degree(Pe(3)), 2);
    }

    #[test]
    fn ring_matches_closed_form() {
        let m = Machine::ring(8);
        check_against(&m, |a, b| closed_form::ring(8, a, b));
        assert_eq!(m.diameter(), 4);
        for p in m.pes() {
            assert_eq!(m.degree(p), 2);
        }
    }

    #[test]
    fn ring_of_two_is_a_single_link() {
        let m = Machine::ring(2);
        assert_eq!(m.links().len(), 1);
        assert_eq!(m.distance(Pe(0), Pe(1)), 1);
    }

    #[test]
    fn complete_matches_closed_form() {
        let m = Machine::complete(8);
        check_against(&m, closed_form::complete);
        assert_eq!(m.diameter(), 1);
        assert_eq!(m.links().len(), 28);
    }

    #[test]
    fn mesh_matches_closed_form() {
        for (r, c) in [(2, 2), (4, 2), (3, 3), (2, 4)] {
            let m = Machine::mesh(r, c);
            check_against(&m, |a, b| closed_form::mesh(c, a, b));
        }
    }

    #[test]
    fn paper_fig1_mesh_is_2x2() {
        let m = Machine::mesh(2, 2);
        assert_eq!(m.num_pes(), 4);
        assert_eq!(m.diameter(), 2);
        // pe1 (index 0) and pe4 (index 3) are diagonal: 2 hops.
        assert_eq!(m.distance(Pe(0), Pe(3)), 2);
        assert_eq!(m.distance(Pe(1), Pe(2)), 2);
        assert_eq!(m.distance(Pe(0), Pe(1)), 1);
    }

    #[test]
    fn torus_matches_closed_form() {
        for (r, c) in [(3, 3), (4, 2), (2, 5)] {
            let m = Machine::torus(r, c);
            check_against(&m, |a, b| closed_form::torus(r, c, a, b));
        }
    }

    #[test]
    fn hypercube_matches_closed_form() {
        for dim in 1..=4 {
            let m = Machine::hypercube(dim);
            check_against(&m, closed_form::hypercube);
            assert_eq!(m.diameter(), dim);
            for p in m.pes() {
                assert_eq!(m.degree(p), dim as usize);
            }
        }
    }

    #[test]
    fn star_distances() {
        let m = Machine::star(6);
        assert_eq!(m.distance(Pe(0), Pe(4)), 1);
        assert_eq!(m.distance(Pe(1), Pe(5)), 2);
        assert_eq!(m.diameter(), 2);
        assert_eq!(m.degree(Pe(0)), 5);
    }

    #[test]
    fn binary_tree_distances() {
        let m = Machine::binary_tree(7);
        assert_eq!(m.distance(Pe(0), Pe(3)), 2);
        assert_eq!(m.distance(Pe(3), Pe(6)), 4); // leaf to leaf across root
        assert_eq!(m.diameter(), 4);
    }

    #[test]
    fn paper_suite_shapes() {
        let suite = Machine::paper_suite();
        assert_eq!(suite.len(), 5);
        for m in &suite {
            assert_eq!(m.num_pes(), 8, "{}", m.name());
            assert!(m.is_connected());
        }
        let diameters: Vec<u32> = suite.iter().map(|m| m.diameter()).collect();
        // linear, ring, complete, mesh 4x2, 3-cube
        assert_eq!(diameters, vec![7, 4, 1, 4, 3]);
    }

    #[test]
    fn distances_are_symmetric_and_triangle() {
        for m in Machine::paper_suite() {
            for a in m.pes() {
                for b in m.pes() {
                    assert_eq!(m.distance(a, b), m.distance(b, a));
                    for c in m.pes() {
                        assert!(m.distance(a, c) <= m.distance(a, b) + m.distance(b, c));
                    }
                }
            }
        }
    }
}

//! Deterministic shortest-path routing over a [`Machine`]'s links.
//!
//! The paper's cost model only needs hop *counts*; the contention-aware
//! simulator extension (see `ccs-sim`) also needs the concrete link
//! sequence a message follows.  Routes are deterministic (lowest PE
//! index wins among equal-length next hops), so repeated simulations
//! are reproducible and dimension-ordered-like on regular topologies.

use crate::machine::Machine;
use crate::pe::Pe;
use std::collections::VecDeque;

/// Precomputed deterministic shortest-path routes for one machine.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    n: usize,
    /// `next[src * n + dst]` = the neighbour of `src` on the route to
    /// `dst` (`src` itself when `src == dst`).
    next: Vec<u32>,
}

impl RoutingTable {
    /// Builds routes for `machine` by per-destination BFS, breaking
    /// ties toward the lowest-index neighbour.
    ///
    /// # Panics
    ///
    /// Panics if the machine is disconnected.
    pub fn new(machine: &Machine) -> Self {
        let n = machine.num_pes();
        assert!(
            machine.is_connected(),
            "cannot route a disconnected machine"
        );
        // adjacency, sorted so ties resolve deterministically
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in machine.links() {
            adj[a].push(b);
            adj[b].push(a);
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        let mut next = vec![0u32; n * n];
        // For each destination, BFS backwards (links are undirected) and
        // record each node's parent toward the destination.
        for dst in 0..n {
            let mut parent: Vec<Option<usize>> = vec![None; n];
            parent[dst] = Some(dst);
            let mut queue = VecDeque::from([dst]);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if parent[v].is_none() {
                        parent[v] = Some(u);
                        queue.push_back(v);
                    }
                }
            }
            for src in 0..n {
                next[src * n + dst] =
                    u32::try_from(parent[src].expect("connected machine")).expect("fits u32");
            }
        }
        RoutingTable { n, next }
    }

    /// The neighbour of `src` on the route to `dst` (`src` when equal).
    pub fn next_hop(&self, src: Pe, dst: Pe) -> Pe {
        Pe(self.next[src.index() * self.n + dst.index()])
    }

    /// The full PE sequence from `src` to `dst`, inclusive of both.
    pub fn path(&self, src: Pe, dst: Pe) -> Vec<Pe> {
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            cur = self.next_hop(cur, dst);
            path.push(cur);
            assert!(path.len() <= self.n, "routing loop between {src} and {dst}");
        }
        path
    }

    /// The undirected links traversed from `src` to `dst`, each as a
    /// `(min, max)` PE-index pair (the representation used by the
    /// contention simulator's link queues).
    pub fn links_on_path(&self, src: Pe, dst: Pe) -> Vec<(usize, usize)> {
        self.path(src, dst)
            .windows(2)
            .map(|w| {
                let (a, b) = (w[0].index(), w[1].index());
                (a.min(b), a.max(b))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_lengths_match_distances() {
        for m in Machine::paper_suite() {
            let routes = RoutingTable::new(&m);
            for a in m.pes() {
                for b in m.pes() {
                    let path = routes.path(a, b);
                    assert_eq!(
                        path.len() - 1,
                        m.distance(a, b) as usize,
                        "{} {a}->{b}",
                        m.name()
                    );
                    assert_eq!(path[0], a);
                    assert_eq!(*path.last().unwrap(), b);
                }
            }
        }
    }

    #[test]
    fn consecutive_hops_are_linked() {
        let m = Machine::mesh(3, 3);
        let routes = RoutingTable::new(&m);
        for a in m.pes() {
            for b in m.pes() {
                for w in routes.path(a, b).windows(2) {
                    assert_eq!(m.distance(w[0], w[1]), 1, "{}->{}", w[0], w[1]);
                }
            }
        }
    }

    #[test]
    fn self_route_is_trivial() {
        let m = Machine::ring(5);
        let routes = RoutingTable::new(&m);
        assert_eq!(routes.path(Pe(2), Pe(2)), vec![Pe(2)]);
        assert!(routes.links_on_path(Pe(2), Pe(2)).is_empty());
    }

    #[test]
    fn deterministic_tie_breaks() {
        // On a 2x2 mesh pe1->pe4 has two shortest routes; the lowest
        // neighbour index (pe2, index 1) must win, every time.
        let m = Machine::mesh(2, 2);
        let routes = RoutingTable::new(&m);
        let p1 = routes.path(Pe(0), Pe(3));
        let p2 = routes.path(Pe(0), Pe(3));
        assert_eq!(p1, p2);
        assert_eq!(p1[1], Pe(1));
    }

    #[test]
    fn links_on_path_are_normalized() {
        let m = Machine::linear_array(4);
        let routes = RoutingTable::new(&m);
        let links = routes.links_on_path(Pe(3), Pe(0));
        assert_eq!(links, vec![(2, 3), (1, 2), (0, 1)]);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn rejects_disconnected() {
        let m = Machine::from_links("broken", 4, &[(0, 1)]);
        let _ = RoutingTable::new(&m);
    }
}

//! The target machine: a set of PEs plus a hop-distance matrix.

use crate::pe::Pe;
use std::collections::VecDeque;
use std::fmt;

/// A target parallel machine.
///
/// The paper models communication as *store-and-forward over
/// contention-free links* (Definition 3.5): sending the data of an edge
/// with volume `m` from `p_i` to `p_j` costs
/// `M(p_i, p_j) = hops(p_i, p_j) * m` control steps, zero when
/// `p_i == p_j`.  A `Machine` therefore only needs the undirected link
/// set and the all-pairs hop distances derived from it.
///
/// ```
/// use ccs_topology::{Machine, Pe};
/// let m = Machine::mesh(2, 2); // the paper's Figure 1(a)
/// assert_eq!(m.num_pes(), 4);
/// assert_eq!(m.distance(Pe(0), Pe(3)), 2);
/// assert_eq!(m.comm_cost(Pe(0), Pe(3), 3), 6);
/// assert_eq!(m.comm_cost(Pe(2), Pe(2), 9), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Machine {
    name: String,
    n: usize,
    /// Row-major `n*n` hop distances. `u32::MAX` = unreachable.
    dist: Vec<u32>,
    /// Undirected links, each stored once with `a < b`.
    links: Vec<(usize, usize)>,
    /// Cached at construction: `true` when every PE can reach every
    /// other PE.  Makes [`Machine::is_connected`] O(1) so schedulers
    /// can reject disconnected machines once at entry instead of
    /// re-checking (or asserting) inside the candidate-scan hot path.
    connected: bool,
}

impl Machine {
    /// Builds a machine from an explicit undirected link list.
    ///
    /// Links are deduplicated; self-links are ignored.  Distances come
    /// from per-source BFS.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or a link endpoint is out of range.
    pub fn from_links(name: impl Into<String>, n: usize, links: &[(usize, usize)]) -> Self {
        assert!(n > 0, "a machine needs at least one PE");
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut norm: Vec<(usize, usize)> = Vec::new();
        // Set-based dedup: the dense builders (`complete`, `ncube`)
        // emit O(n^2) links, so a linear `contains` scan here made
        // construction quadratic in the link count.  `norm` still
        // records first-seen order for a stable public link list.
        let mut seen: std::collections::BTreeSet<(usize, usize)> =
            std::collections::BTreeSet::new();
        for &(a, b) in links {
            assert!(a < n && b < n, "link ({a},{b}) out of range for {n} PEs");
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                norm.push(key);
                adj[a].push(b);
                adj[b].push(a);
            }
        }
        let mut dist = vec![u32::MAX; n * n];
        for src in 0..n {
            let mut queue = VecDeque::new();
            dist[src * n + src] = 0;
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                let du = dist[src * n + u];
                for &v in &adj[u] {
                    if dist[src * n + v] == u32::MAX {
                        dist[src * n + v] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        let connected = dist.iter().all(|&d| d != u32::MAX);
        Machine {
            name: name.into(),
            n,
            dist,
            links: norm,
            connected,
        }
    }

    /// An idealized PRAM-style machine: `n` PEs, fully linked, and
    /// *zero* hop distance between every pair — all communication is
    /// free.  This is not a physical topology; it exists so that the
    /// communication-oblivious baselines (classic list scheduling and
    /// Chao–LaPaugh–Sha rotation scheduling) can be expressed as
    /// "schedule against the ideal machine, then legalize on the real
    /// one".
    pub fn ideal(n: usize) -> Self {
        assert!(n > 0, "a machine needs at least one PE");
        let mut links = Vec::with_capacity(n * (n - 1) / 2);
        for a in 0..n {
            for b in (a + 1)..n {
                links.push((a, b));
            }
        }
        Machine {
            name: format!("Ideal {n}"),
            n,
            dist: vec![0; n * n],
            links,
            connected: true,
        }
    }

    /// Machine name (e.g. `"2-D Mesh 4x2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processing elements.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.n
    }

    /// Iterator over all PEs in index order.
    pub fn pes(&self) -> impl Iterator<Item = Pe> + '_ {
        (0..self.n).map(Pe::from_index)
    }

    /// Hop distance between two PEs (0 for `a == b`).
    ///
    /// Connectivity is a *construction-time* property: it is computed
    /// once by [`Machine::from_links`] and exposed through the O(1)
    /// [`Machine::is_connected`], which schedulers check at entry.
    /// The hot path here is therefore a branch-free table read in
    /// release builds; debug builds still panic on a cross-partition
    /// query so misuse surfaces in tests.
    #[inline]
    pub fn distance(&self, a: Pe, b: Pe) -> u32 {
        let d = self.dist[a.index() * self.n + b.index()];
        debug_assert!(
            d != u32::MAX,
            "machine {:?} is disconnected between {a} and {b}",
            self.name
        );
        d
    }

    /// The full hop-distance row of `from`: `dist_row(p)[q.index()]`
    /// is `distance(p, q)`.  Distances are symmetric (links are
    /// undirected), so one row serves both send and receive costs.
    ///
    /// This is the bulk entry point of the candidate-scan engine: the
    /// remapper hoists one row per resolved edge and scales it by the
    /// edge volume once, turning the per-PE `comm`/`lb`/`ub` sweeps
    /// into indexed adds with no multiplies.
    ///
    /// ```
    /// use ccs_topology::{Machine, Pe};
    /// let m = Machine::mesh(2, 2);
    /// assert_eq!(m.dist_row(Pe(0)), &[0, 1, 1, 2]);
    /// ```
    #[inline]
    pub fn dist_row(&self, from: Pe) -> &[u32] {
        let i = from.index() * self.n;
        &self.dist[i..i + self.n]
    }

    /// Hop distance between two PEs without the connectivity panic of
    /// [`Machine::distance`]: `None` when the PEs lie in different
    /// partitions of a disconnected machine or an index is out of
    /// range.  This is the entry point diagnostics code uses — it must
    /// report unreachable pairs, not die on them.
    #[inline]
    pub fn try_distance(&self, a: Pe, b: Pe) -> Option<u32> {
        if a.index() >= self.n || b.index() >= self.n {
            return None;
        }
        match self.dist[a.index() * self.n + b.index()] {
            u32::MAX => None,
            d => Some(d),
        }
    }

    /// Communication cost `hops * volume` without the connectivity
    /// panic: `None` when [`Machine::try_distance`] is `None`.
    #[inline]
    pub fn try_comm_cost(&self, from: Pe, to: Pe, volume: u32) -> Option<u32> {
        self.try_distance(from, to).map(|d| d * volume)
    }

    /// `true` if every PE can reach every other PE.  O(1): cached at
    /// construction.
    #[inline]
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// All unordered PE pairs with no connecting path (empty for a
    /// connected machine).  Reported pairs satisfy `a < b`.
    pub fn unreachable_pairs(&self) -> Vec<(Pe, Pe)> {
        let mut out = Vec::new();
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                if self.dist[a * self.n + b] == u32::MAX {
                    out.push((Pe::from_index(a), Pe::from_index(b)));
                }
            }
        }
        out
    }

    /// The paper's communication function
    /// `M(p_i, p_j) = hops * volume` (Definition 3.5).
    #[inline]
    pub fn comm_cost(&self, from: Pe, to: Pe, volume: u32) -> u32 {
        self.distance(from, to) * volume
    }

    /// Undirected links, each reported once with the smaller index first.
    pub fn links(&self) -> &[(usize, usize)] {
        &self.links
    }

    /// Degree (number of attached links) of a PE.
    pub fn degree(&self, p: Pe) -> usize {
        let i = p.index();
        self.links
            .iter()
            .filter(|&&(a, b)| a == i || b == i)
            .count()
    }

    /// Maximum hop distance over all PE pairs.
    pub fn diameter(&self) -> u32 {
        let mut best = 0;
        for a in 0..self.n {
            for b in 0..self.n {
                let d = self.dist[a * self.n + b];
                if d != u32::MAX {
                    best = best.max(d);
                }
            }
        }
        best
    }

    /// Mean hop distance over ordered distinct PE pairs.
    pub fn mean_distance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        let mut count = 0u64;
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b {
                    total += u64::from(self.dist[a * self.n + b]);
                    count += 1;
                }
            }
        }
        total as f64 / count as f64
    }

    /// Graphviz rendering of the link graph.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "graph machine {{");
        for p in 0..self.n {
            let _ = writeln!(out, "  pe{};", p + 1);
        }
        for &(a, b) in &self.links {
            let _ = writeln!(out, "  pe{} -- pe{};", a + 1, b + 1);
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} PEs, {} links, diameter {})",
            self.name,
            self.n,
            self.links.len(),
            self.diameter()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_links_dedups_and_symmetrizes() {
        let m = Machine::from_links("t", 3, &[(0, 1), (1, 0), (1, 2), (2, 2)]);
        assert_eq!(m.links().len(), 2);
        assert_eq!(m.distance(Pe(0), Pe(2)), 2);
        assert_eq!(m.distance(Pe(2), Pe(0)), 2);
        assert_eq!(m.distance(Pe(1), Pe(1)), 0);
    }

    #[test]
    fn comm_cost_multiplies_volume() {
        let m = Machine::from_links("t", 3, &[(0, 1), (1, 2)]);
        assert_eq!(m.comm_cost(Pe(0), Pe(2), 5), 10);
        assert_eq!(m.comm_cost(Pe(0), Pe(0), 5), 0);
    }

    #[test]
    fn degree_and_diameter() {
        let m = Machine::from_links("path4", 4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(m.degree(Pe(0)), 1);
        assert_eq!(m.degree(Pe(1)), 2);
        assert_eq!(m.diameter(), 3);
        assert!(m.is_connected());
    }

    #[test]
    fn disconnected_machine_detected() {
        let m = Machine::from_links("two islands", 4, &[(0, 1), (2, 3)]);
        assert!(!m.is_connected());
        assert_eq!(
            m.unreachable_pairs(),
            vec![
                (Pe(0), Pe(2)),
                (Pe(0), Pe(3)),
                (Pe(1), Pe(2)),
                (Pe(1), Pe(3))
            ]
        );
    }

    #[test]
    fn try_distance_is_total() {
        let m = Machine::from_links("two islands", 4, &[(0, 1), (2, 3)]);
        assert_eq!(m.try_distance(Pe(0), Pe(1)), Some(1));
        assert_eq!(m.try_distance(Pe(0), Pe(3)), None);
        assert_eq!(m.try_distance(Pe(0), Pe(9)), None); // out of range
        assert_eq!(m.try_comm_cost(Pe(0), Pe(1), 5), Some(5));
        assert_eq!(m.try_comm_cost(Pe(1), Pe(2), 5), None);
        let c = Machine::complete(3);
        assert!(c.unreachable_pairs().is_empty());
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "distance() is a branch-free table read in release builds"
    )]
    fn distance_across_partition_panics_in_debug() {
        let m = Machine::from_links("two islands", 4, &[(0, 1), (2, 3)]);
        let _ = m.distance(Pe(0), Pe(3));
    }

    #[test]
    fn dist_row_matches_distance() {
        let m = Machine::from_links("path4", 4, &[(0, 1), (1, 2), (2, 3)]);
        for a in m.pes() {
            let row = m.dist_row(a);
            assert_eq!(row.len(), m.num_pes());
            for b in m.pes() {
                assert_eq!(row[b.index()], m.distance(a, b));
                // Undirected links: rows are symmetric.
                assert_eq!(row[b.index()], m.dist_row(b)[a.index()]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_link_panics() {
        let _ = Machine::from_links("bad", 2, &[(0, 5)]);
    }

    #[test]
    fn mean_distance_of_triangle() {
        let m = Machine::from_links("k3", 3, &[(0, 1), (1, 2), (0, 2)]);
        assert!((m.mean_distance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_and_dot() {
        let m = Machine::from_links("demo", 2, &[(0, 1)]);
        assert!(m.to_string().contains("demo (2 PEs, 1 links, diameter 1)"));
        let dot = m.to_dot();
        assert!(dot.contains("pe1 -- pe2"));
    }

    #[test]
    fn single_pe_machine() {
        let m = Machine::from_links("uni", 1, &[]);
        assert_eq!(m.diameter(), 0);
        assert_eq!(m.mean_distance(), 0.0);
        assert!(m.is_connected());
    }
}

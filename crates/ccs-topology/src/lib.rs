//! # ccs-topology
//!
//! Target-machine models for the ICPP'95 cyclo-compaction scheduler:
//! the five architectures of the paper's Figure 5 — linear array, ring,
//! completely connected, 2-D mesh, n-cube — plus torus, star and binary
//! tree as extensions, all reduced to one uniform abstraction:
//!
//! * [`Machine`] — a set of PEs, an undirected link list, and all-pairs
//!   hop distances (BFS), exposing the paper's communication function
//!   `M(p_i, p_j) = hops * volume` as [`Machine::comm_cost`];
//! * [`builders::closed_form`] — analytic distance formulas used to
//!   cross-check the BFS matrices in tests.
//!
//! Communication follows the paper's model (Definition 3.5):
//! store-and-forward over contention-free multiple channels, cost
//! proportional to distance times data volume.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builders;
mod machine;
mod pe;
pub mod routing;
pub mod spec;

pub use machine::Machine;
pub use pe::Pe;
pub use routing::RoutingTable;
pub use spec::{parse_spec, random_machine};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_machine() -> impl Strategy<Value = Machine> {
        prop_oneof![
            (1usize..10).prop_map(Machine::linear_array),
            (3usize..10).prop_map(Machine::ring),
            (1usize..10).prop_map(Machine::complete),
            ((1usize..5), (1usize..5)).prop_map(|(r, c)| Machine::mesh(r, c)),
            (1u32..5).prop_map(Machine::hypercube),
            (2usize..10).prop_map(Machine::star),
        ]
    }

    proptest! {
        #[test]
        fn distances_form_a_metric(m in arb_machine()) {
            for a in m.pes() {
                prop_assert_eq!(m.distance(a, a), 0);
                for b in m.pes() {
                    prop_assert_eq!(m.distance(a, b), m.distance(b, a));
                    if a != b {
                        prop_assert!(m.distance(a, b) >= 1);
                    }
                }
            }
        }

        #[test]
        fn diameter_bounds_every_distance(m in arb_machine()) {
            let d = m.diameter();
            for a in m.pes() {
                for b in m.pes() {
                    prop_assert!(m.distance(a, b) <= d);
                }
            }
        }

        #[test]
        fn comm_cost_is_linear_in_volume(m in arb_machine(), v in 1u32..50) {
            for a in m.pes().take(3) {
                for b in m.pes().take(3) {
                    prop_assert_eq!(m.comm_cost(a, b, v), m.distance(a, b) * v);
                }
            }
        }

        #[test]
        fn connected_machines_have_finite_mean(m in arb_machine()) {
            prop_assert!(m.is_connected());
            prop_assert!(m.mean_distance() <= f64::from(m.diameter()));
        }
    }
}

//! Processor-element identifier.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a processing element (PE) of a target machine.
///
/// PEs are numbered densely from 0; the paper's tables label them
/// `pe1..peN`, i.e. `Pe(k)` prints as `pe{k+1}` for familiarity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pe(pub u32);

impl Pe {
    /// Raw 0-based index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `Pe` from a 0-based index.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        Pe(u32::try_from(ix).expect("PE index exceeds u32::MAX"))
    }
}

impl fmt::Debug for Pe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe{}", self.0 + 1)
    }
}

impl fmt::Display for Pe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe{}", self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_is_one_based() {
        assert_eq!(Pe(0).to_string(), "pe1");
        assert_eq!(format!("{:?}", Pe(7)), "pe8");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(Pe::from_index(5).index(), 5);
    }
}

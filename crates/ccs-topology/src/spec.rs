//! Textual machine specifications, e.g. `"mesh:4x2"` or `"ring:8"`.
//!
//! Used by the examples and experiment binaries so machines can be
//! chosen on the command line with one consistent syntax.

use crate::machine::Machine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Error from [`parse_spec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad machine spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// Parses a machine specification:
///
/// | spec | machine |
/// |---|---|
/// | `linear:N` | linear array of `N` PEs |
/// | `ring:N` | bidirectional ring |
/// | `complete:N` | completely connected |
/// | `mesh:RxC` | 2-D mesh, row-major |
/// | `torus:RxC` | 2-D torus |
/// | `hypercube:D` | `D`-cube (`2^D` PEs) |
/// | `star:N` | hub-and-spoke |
/// | `tree:N` | complete binary tree |
/// | `ideal:N` | zero-cost PRAM-style machine |
/// | `random:N:S` | random connected machine, `N` PEs, seed `S` |
pub fn parse_spec(spec: &str) -> Result<Machine, SpecError> {
    let mut parts = spec.split(':');
    let kind = parts.next().ok_or_else(|| err("empty spec"))?;
    let size = parts
        .next()
        .ok_or_else(|| err(format!("{spec:?}: missing size")))?;
    let tail = parts.next();
    if parts.next().is_some() {
        return Err(err(format!("{spec:?}: too many ':' segments")));
    }
    let n = |s: &str| -> Result<usize, SpecError> {
        s.parse().map_err(|_| err(format!("bad count {s:?}")))
    };
    let grid = |s: &str| -> Result<(usize, usize), SpecError> {
        let (r, c) = s
            .split_once('x')
            .ok_or_else(|| err(format!("grid size {s:?} must look like RxC")))?;
        Ok((n(r)?, n(c)?))
    };
    if tail.is_some() && kind != "random" {
        return Err(err(format!(
            "{spec:?}: only random:N:SEED takes a third field"
        )));
    }
    let m = match kind {
        "linear" => Machine::linear_array(check_nonzero(n(size)?)?),
        "ring" => Machine::ring(check_nonzero(n(size)?)?),
        "complete" => Machine::complete(check_nonzero(n(size)?)?),
        "ideal" => Machine::ideal(check_nonzero(n(size)?)?),
        "star" => Machine::star(check_nonzero(n(size)?)?),
        "tree" => Machine::binary_tree(check_nonzero(n(size)?)?),
        "hypercube" => {
            let d: u32 = size
                .parse()
                .map_err(|_| err(format!("bad dimension {size:?}")))?;
            if d > 16 {
                return Err(err("hypercube dimension > 16 is unreasonable"));
            }
            Machine::hypercube(d)
        }
        "mesh" => {
            let (r, c) = grid(size)?;
            check_nonzero(r * c)?;
            Machine::mesh(r, c)
        }
        "torus" => {
            let (r, c) = grid(size)?;
            check_nonzero(r * c)?;
            Machine::torus(r, c)
        }
        "random" => {
            let seed: u64 = tail
                .ok_or_else(|| err("random:N:SEED needs a seed"))?
                .parse()
                .map_err(|_| err("bad seed"))?;
            random_machine(check_nonzero(n(size)?)?, seed)
        }
        other => return Err(err(format!("unknown machine kind {other:?}"))),
    };
    Ok(m)
}

fn check_nonzero(n: usize) -> Result<usize, SpecError> {
    if n == 0 {
        Err(err("machine size must be >= 1"))
    } else {
        Ok(n)
    }
}

/// A random connected machine: a random spanning tree plus `~n/2`
/// extra links; deterministic in `seed`.  Used for robustness sweeps
/// on irregular interconnects.
pub fn random_machine(n: usize, seed: u64) -> Machine {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut links = Vec::new();
    for v in 1..n {
        let u = rng.gen_range(0..v);
        links.push((u, v));
    }
    let extra = n / 2;
    for _ in 0..extra {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            links.push((a.min(b), a.max(b)));
        }
    }
    Machine::from_links(format!("Random {n} (seed {seed})"), n, &links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::Pe;

    #[test]
    fn parses_every_kind() {
        for (spec, pes) in [
            ("linear:4", 4),
            ("ring:5", 5),
            ("complete:3", 3),
            ("mesh:2x3", 6),
            ("torus:2x2", 4),
            ("hypercube:3", 8),
            ("star:6", 6),
            ("tree:7", 7),
            ("ideal:4", 4),
            ("random:9:42", 9),
        ] {
            let m = parse_spec(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(m.num_pes(), pes, "{spec}");
            assert!(m.is_connected(), "{spec}");
        }
    }

    #[test]
    fn rejects_bad_specs() {
        for spec in [
            "",
            "mesh",
            "mesh:4",
            "mesh:4y2",
            "ring:zero",
            "warp:4",
            "ring:0",
            "hypercube:99",
            "random:5",
            "ring:5:7",
            "mesh:2x3:4:5",
        ] {
            assert!(parse_spec(spec).is_err(), "{spec:?} should fail");
        }
    }

    #[test]
    fn spec_errors_display() {
        let e = parse_spec("warp:4").unwrap_err();
        assert!(e.to_string().contains("unknown machine kind"));
    }

    #[test]
    fn random_machines_deterministic() {
        let a = random_machine(10, 7);
        let b = random_machine(10, 7);
        assert_eq!(a.links(), b.links());
        let c = random_machine(10, 8);
        assert_ne!(a.links(), c.links());
    }

    #[test]
    fn ideal_spec_gives_zero_distance() {
        let m = parse_spec("ideal:3").unwrap();
        assert_eq!(m.distance(Pe(0), Pe(2)), 0);
    }
}

//! # ccs-retiming
//!
//! The retiming substrate under the ICPP'95 cyclo-compaction scheduler.
//!
//! * [`Retiming`] — retiming vectors in the paper's sign convention
//!   (`r(v)` delays drawn from incoming edges and pushed to outgoing
//!   edges), with legality checking, application, normalization and the
//!   [`rotate`] operation of Definition 4.1;
//! * [`prologue`] / [`epilogue`] — the pre-/post-loop instruction
//!   multiplicities implied by a retiming (§2 of the paper);
//! * [`iteration_bound`](iteration_bound::iteration_bound) — the
//!   maximum cycle ratio `max_C T(C)/D(C)`, an architecture-independent
//!   lower bound on any schedule's initiation interval;
//! * [`clock_period`] — Leiserson–Saxe `FEAS`-based
//!   minimum clock-period retiming, the analytic optimum rotation-based
//!   compaction is measured against.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock_period;
pub mod howard;
pub mod iteration_bound;
mod retiming;
pub mod wd;

pub use clock_period::{critical_chain, min_clock_period};
pub use howard::max_cycle_ratio_howard;
pub use iteration_bound::{critical_cycle, iteration_bound, Ratio};
pub use retiming::{epilogue, prologue, rotate, rotate_in_place, unrotate_in_place, Retiming};
pub use wd::{min_clock_period_wd, WdMatrices};

#[cfg(test)]
mod proptests {
    use super::*;
    use ccs_model::Csdfg;
    use proptest::prelude::*;

    /// Random legal CSDFG: forward edges may carry 0..3 delays, backward
    /// edges always >= 1.
    fn arb_csdfg() -> impl Strategy<Value = Csdfg> {
        (2usize..10).prop_flat_map(|n| {
            let times = proptest::collection::vec(1u32..5, n);
            let edges = proptest::collection::vec((0..n, 0..n, 0u32..3, 1u32..3), 1..n * 2);
            (times, edges).prop_map(move |(times, edges)| {
                let mut g = Csdfg::new();
                let ids: Vec<_> = times
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| g.add_task(format!("v{i}"), t).unwrap())
                    .collect();
                for (a, b, d, c) in edges {
                    let delay = if a < b { d } else { d.max(1) };
                    g.add_dep(ids[a], ids[b], delay, c).unwrap();
                }
                g
            })
        })
    }

    proptest! {
        #[test]
        fn legal_retimings_preserve_legality(g in arb_csdfg()) {
            let (_, r) = clock_period::min_clock_period(&g);
            prop_assert!(r.is_legal(&g));
            let retimed = r.apply(&g);
            prop_assert!(retimed.check_legal().is_ok());
        }

        #[test]
        fn min_period_never_exceeds_initial(g in arb_csdfg()) {
            let initial = clock_period::clock_period(&g);
            let (best, _) = clock_period::min_clock_period(&g);
            prop_assert!(best <= initial);
            let heaviest = g.tasks().map(|v| g.time(v)).max().unwrap();
            prop_assert!(best >= heaviest);
        }

        #[test]
        fn iteration_bound_invariant_under_min_period_retiming(g in arb_csdfg()) {
            let before = iteration_bound(&g);
            let (_, r) = clock_period::min_clock_period(&g);
            let after = iteration_bound(&r.apply(&g));
            prop_assert_eq!(before, after);
        }

        #[test]
        fn min_period_at_least_iteration_bound(g in arb_csdfg()) {
            if let Some(b) = iteration_bound(&g) {
                let (best, _) = clock_period::min_clock_period(&g);
                // Φ >= ceil(B) because a period below the bound would
                // sustain an initiation interval below it.
                prop_assert!(u64::from(best) >= b.ceil());
            }
        }

        #[test]
        fn rotation_of_delay_guarded_roots_is_legal(g in arb_csdfg()) {
            // Nodes whose incoming edges all carry delays can be rotated.
            let rotatable: Vec<_> = g
                .tasks()
                .filter(|&v| g.in_deps(v).all(|e| g.delay(e) >= 1))
                .collect();
            if !rotatable.is_empty() {
                let rotated = rotate(&g, &rotatable).unwrap();
                prop_assert!(rotated.check_legal().is_ok());
                prop_assert_eq!(iteration_bound(&rotated), iteration_bound(&g));
            }
        }

        #[test]
        fn howard_agrees_with_lambda_search(g in arb_csdfg()) {
            prop_assert_eq!(howard::max_cycle_ratio_howard(&g), iteration_bound(&g));
        }

        #[test]
        fn wd_and_feas_agree_on_min_period(g in arb_csdfg()) {
            let (feas, _) = clock_period::min_clock_period(&g);
            let (wd_p, r) = wd::min_clock_period_wd(&g);
            prop_assert_eq!(feas, wd_p);
            prop_assert!(r.is_legal(&g));
            prop_assert_eq!(clock_period::clock_period(&r.apply(&g)), wd_p);
        }

        #[test]
        fn prologue_epilogue_cover_all_offsets(g in arb_csdfg()) {
            let (_, mut r) = clock_period::min_clock_period(&g);
            r.normalize(&g);
            let max = g.tasks().map(|v| r.get(v)).max().unwrap_or(0);
            let pro: u64 = prologue(&g, &r).iter().map(|&(_, k)| u64::from(k)).sum();
            let epi: u64 = epilogue(&g, &r).iter().map(|&(_, k)| u64::from(k)).sum();
            // Every node appears max times in prologue+epilogue combined.
            prop_assert_eq!(pro + epi, max as u64 * g.task_count() as u64);
        }
    }
}

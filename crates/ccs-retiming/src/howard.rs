//! Howard's policy-iteration algorithm for the maximum cycle ratio —
//! an independent second implementation of the iteration bound,
//! cross-checked against the lambda-search of
//! [`iteration_bound`](crate::iteration_bound::iteration_bound) in the
//! property tests.
//!
//! The maximum cycle ratio of a CSDFG is
//! `max over cycles C of T(C) / D(C)` with `T` the total computation
//! time and `D` the total delay count.  Howard's algorithm maintains a
//! *policy* (one outgoing edge per node), evaluates every node's
//! `(ratio, value)` pair with respect to the unique cycle its policy
//! path reaches, and improves the policy lexicographically (better
//! ratio first, then better value) until fixpoint.

use crate::iteration_bound::Ratio;
use ccs_model::{Csdfg, EdgeId, NodeId};

/// Computes the maximum cycle ratio of `g` by policy iteration.
///
/// Returns `None` for acyclic graphs.
///
/// # Panics
///
/// Panics if `g` has a zero-delay cycle (the ratio would be infinite).
pub fn max_cycle_ratio_howard(g: &Csdfg) -> Option<Ratio> {
    use ccs_graph::algo::scc::tarjan_scc;
    assert!(g.check_legal().is_ok(), "illegal CSDFG: zero-delay cycle");

    let mut best: Option<Ratio> = None;
    for scc in tarjan_scc(g.graph()) {
        let has_cycle = scc.len() > 1 || scc.first().is_some_and(|&v| g.succs(v).any(|s| s == v));
        if !has_cycle {
            continue;
        }
        let r = component_ratio(g, &scc);
        best = Some(match best {
            None => r,
            Some(b) if r > b => r,
            Some(b) => b,
        });
    }
    best
}

/// Per-node evaluation of a policy.
struct Eval {
    /// Ratio of the cycle this node's policy path reaches.
    lambda: Vec<f64>,
    /// Relative value (potential) w.r.t. that cycle.
    value: Vec<f64>,
    /// Exact rational of the best cycle seen in this policy.
    best_cycle: Ratio,
}

fn component_ratio(g: &Csdfg, scc: &[NodeId]) -> Ratio {
    let bound = g.graph().node_bound();
    let mut in_scc = vec![false; bound];
    for &v in scc {
        in_scc[v.index()] = true;
    }
    let internal_edges = |v: NodeId| -> Vec<EdgeId> {
        g.out_deps(v)
            .filter(|&e| in_scc[g.endpoints(e).1.index()])
            .collect()
    };

    // Initial policy: the internal out-edge with the largest delay
    // (heuristically close to the final policy for low ratios).
    let mut policy: Vec<Option<EdgeId>> = vec![None; bound];
    for &v in scc {
        policy[v.index()] = internal_edges(v).into_iter().max_by_key(|&e| g.delay(e));
        assert!(
            policy[v.index()].is_some(),
            "SCC node without internal out-edge"
        );
    }

    let mut result = Ratio::new(0, 1);
    for _round in 0..10_000 {
        let eval = evaluate(g, scc, &policy);
        result = eval.best_cycle;
        // Improvement (lexicographic: ratio, then value).
        let mut changed = false;
        for &v in scc {
            let cur_l = eval.lambda[v.index()];
            let cur_val = eval.value[v.index()];
            let mut best_edge = policy[v.index()];
            let mut best_key = (cur_l, cur_val);
            for e in internal_edges(v) {
                let (_, w) = g.endpoints(e);
                let lw = eval.lambda[w.index()];
                let cand_val =
                    f64::from(g.time(v)) - lw * f64::from(g.delay(e)) + eval.value[w.index()];
                let key = (lw, cand_val);
                if key.0 > best_key.0 + 1e-9
                    || ((key.0 - best_key.0).abs() <= 1e-9 && key.1 > best_key.1 + 1e-9)
                {
                    best_key = key;
                    best_edge = Some(e);
                }
            }
            if best_edge != policy[v.index()] {
                policy[v.index()] = best_edge;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    result
}

/// Evaluates a policy: every node's `(lambda, value)` and the best
/// exact cycle ratio in the policy's functional graph.
fn evaluate(g: &Csdfg, scc: &[NodeId], policy: &[Option<EdgeId>]) -> Eval {
    let bound = g.graph().node_bound();
    let mut lambda = vec![f64::NEG_INFINITY; bound];
    let mut value = vec![0.0f64; bound];
    let mut state = vec![0u8; bound]; // 0 unvisited, 1 on stack, 2 done
    let mut best_cycle = Ratio::new(0, 1);
    let mut any_cycle = false;

    let next_of = |v: NodeId| -> NodeId {
        g.endpoints(policy[v.index()].expect("policy covers the SCC"))
            .1
    };

    for &start in scc {
        if state[start.index()] == 2 {
            continue;
        }
        // Walk the policy path, recording the stack.
        let mut stack: Vec<NodeId> = Vec::new();
        let mut cur = start;
        while state[cur.index()] == 0 {
            state[cur.index()] = 1;
            stack.push(cur);
            cur = next_of(cur);
        }
        if state[cur.index()] == 1 {
            // Found a new cycle: stack suffix from `cur`.
            let cut = stack.iter().position(|&v| v == cur).expect("on stack");
            let cycle = &stack[cut..];
            let mut t_sum = 0u64;
            let mut d_sum = 0u64;
            for &v in cycle {
                t_sum += u64::from(g.time(v));
                d_sum += u64::from(g.delay(policy[v.index()].expect("covered")));
            }
            assert!(d_sum > 0, "zero-delay cycle escaped the legality check");
            let exact = Ratio::new(t_sum, d_sum);
            if !any_cycle || exact > best_cycle {
                best_cycle = exact;
            }
            any_cycle = true;
            let lam = exact.as_f64();
            // Values around the cycle: anchor the entry node at 0 and
            // unwind backwards (consistent because the cycle's
            // adjusted weight sums to zero).
            lambda[cur.index()] = lam;
            value[cur.index()] = 0.0;
            for &v in cycle.iter().rev() {
                if v == cur {
                    continue;
                }
                let w = next_of(v);
                lambda[v.index()] = lam;
                value[v.index()] = f64::from(g.time(v))
                    - lam * f64::from(g.delay(policy[v.index()].expect("covered")))
                    + value[w.index()];
            }
            for &v in cycle {
                state[v.index()] = 2;
            }
        }
        // Unwind the remaining stack (tree nodes feeding the cycle /
        // already-evaluated region).
        while let Some(v) = stack.pop() {
            if state[v.index()] == 2 {
                continue;
            }
            let w = next_of(v);
            debug_assert_eq!(state[w.index()], 2, "successor evaluated first");
            let lam = lambda[w.index()];
            lambda[v.index()] = lam;
            value[v.index()] = f64::from(g.time(v))
                - lam * f64::from(g.delay(policy[v.index()].expect("covered")))
                + value[w.index()];
            state[v.index()] = 2;
        }
    }
    Eval {
        lambda,
        value,
        best_cycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iteration_bound::iteration_bound;

    #[test]
    fn simple_loop() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 1, 1).unwrap();
        assert_eq!(max_cycle_ratio_howard(&g), Some(Ratio::new(3, 1)));
    }

    #[test]
    fn picks_the_critical_cycle() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        let c = g.add_task("C", 5).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 3, 1).unwrap(); // ratio 1
        g.add_dep(c, c, 2, 1).unwrap(); // ratio 5/2
        g.add_dep(a, c, 0, 1).unwrap();
        assert_eq!(max_cycle_ratio_howard(&g), Some(Ratio::new(5, 2)));
    }

    #[test]
    fn acyclic_gives_none() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 2, 1).unwrap();
        assert_eq!(max_cycle_ratio_howard(&g), None);
    }

    #[test]
    fn agrees_with_lambda_search_on_overlapping_cycles() {
        let mut g = Csdfg::new();
        let n: Vec<_> = (0..5)
            .map(|i| g.add_task(format!("v{i}"), (i % 3 + 1) as u32).unwrap())
            .collect();
        g.add_dep(n[0], n[1], 0, 1).unwrap();
        g.add_dep(n[1], n[2], 0, 1).unwrap();
        g.add_dep(n[2], n[0], 2, 1).unwrap();
        g.add_dep(n[1], n[3], 0, 1).unwrap();
        g.add_dep(n[3], n[0], 1, 1).unwrap();
        g.add_dep(n[3], n[4], 0, 1).unwrap();
        g.add_dep(n[4], n[3], 3, 1).unwrap();
        // Cycles: 0-1-2 (T=6,D=2 -> 3), 0-1-3 (T=4,D=1 -> 4), 3-4 (T=3,D=3 -> 1).
        assert_eq!(max_cycle_ratio_howard(&g), Some(Ratio::new(4, 1)));
        assert_eq!(max_cycle_ratio_howard(&g), iteration_bound(&g));
    }

    #[test]
    fn agrees_on_the_paper_example() {
        let g = {
            let mut g = Csdfg::new();
            let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
                .iter()
                .map(|n| {
                    let t = if *n == "B" || *n == "E" { 2 } else { 1 };
                    g.add_task(*n, t).unwrap()
                })
                .collect();
            let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
            g.add_dep(a, b, 0, 1).unwrap();
            g.add_dep(a, c, 0, 1).unwrap();
            g.add_dep(a, e, 0, 1).unwrap();
            g.add_dep(b, d, 0, 1).unwrap();
            g.add_dep(b, e, 0, 2).unwrap();
            g.add_dep(c, e, 0, 1).unwrap();
            g.add_dep(d, a, 3, 3).unwrap();
            g.add_dep(d, f, 0, 2).unwrap();
            g.add_dep(e, f, 0, 1).unwrap();
            g.add_dep(f, e, 1, 1).unwrap();
            g
        };
        assert_eq!(max_cycle_ratio_howard(&g), Some(Ratio::new(3, 1)));
    }

    #[test]
    #[should_panic(expected = "illegal CSDFG")]
    fn zero_delay_cycle_panics() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 0, 1).unwrap();
        let _ = max_cycle_ratio_howard(&g);
    }
}

//! Retiming vectors and their application to CSDFGs.
//!
//! The paper uses the convention of Leiserson–Saxe with the sign
//! flipped (its §2): `r(v)` is *the number of delays drawn from every
//! incoming edge of `v` and pushed onto every outgoing edge*.  For an
//! edge `u -> v` the retimed delay count is therefore
//!
//! ```text
//! d_r(u -> v) = d(e) + r(u) - r(v)
//! ```
//!
//! A retiming is *legal* when every retimed delay is non-negative; the
//! delay sum around any cycle is invariant.

use ccs_model::{Csdfg, EdgeId, NodeId};
use std::fmt;

/// A retiming function `r : V -> Z`, stored densely by node index.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Retiming {
    r: Vec<i64>,
}

impl Retiming {
    /// The zero retiming for a graph with node bound `bound`
    /// (see [`ccs_graph::DiGraph::node_bound`]).
    pub fn zero(bound: usize) -> Self {
        Retiming { r: vec![0; bound] }
    }

    /// The zero retiming sized for graph `g`.
    pub fn zero_for(g: &Csdfg) -> Self {
        Self::zero(g.graph().node_bound())
    }

    /// Value `r(v)`.
    pub fn get(&self, v: NodeId) -> i64 {
        self.r[v.index()]
    }

    /// Sets `r(v)`.
    pub fn set(&mut self, v: NodeId, value: i64) {
        self.r[v.index()] = value;
    }

    /// Adds `delta` to `r(v)`.
    pub fn bump(&mut self, v: NodeId, delta: i64) {
        self.r[v.index()] += delta;
    }

    /// Retimed delay of edge `e` in graph `g` under this retiming.
    pub fn retimed_delay(&self, g: &Csdfg, e: EdgeId) -> i64 {
        let (u, v) = g.endpoints(e);
        i64::from(g.delay(e)) + self.get(u) - self.get(v)
    }

    /// `true` when every retimed delay is non-negative.
    pub fn is_legal(&self, g: &Csdfg) -> bool {
        g.deps().all(|e| self.retimed_delay(g, e) >= 0)
    }

    /// Applies the retiming, producing the retimed graph.
    ///
    /// # Panics
    ///
    /// Panics if the retiming is illegal for `g`.
    pub fn apply(&self, g: &Csdfg) -> Csdfg {
        let mut out = g.clone();
        for e in g.deps() {
            let d = self.retimed_delay(g, e);
            assert!(d >= 0, "illegal retiming: edge {e:?} would get delay {d}");
            out.set_delay(e, u32::try_from(d).expect("checked non-negative"));
        }
        out
    }

    /// Normalizes so the minimum retiming value over live nodes of `g`
    /// is zero (does not change any retimed delay).
    pub fn normalize(&mut self, g: &Csdfg) {
        let min = g.tasks().map(|v| self.get(v)).min().unwrap_or(0);
        for v in g.tasks() {
            self.r[v.index()] -= min;
        }
    }

    /// Composes in place: `self := self + other`.
    pub fn compose(&mut self, other: &Retiming) {
        assert_eq!(self.r.len(), other.r.len(), "retiming size mismatch");
        for (a, b) in self.r.iter_mut().zip(&other.r) {
            *a += b;
        }
    }
}

impl fmt::Display for Retiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r = [")?;
        for (i, v) in self.r.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Retimes every node of `set` by `+1` — the paper's *rotation*
/// operation (Definition 4.1): one delay is drawn from each incoming
/// edge of the set and pushed to each outgoing edge.
///
/// Returns the retimed graph, or `Err(edge)` naming an offending edge if
/// some incoming edge of the set carries no delay (illegal rotation).
pub fn rotate(g: &Csdfg, set: &[NodeId]) -> Result<Csdfg, EdgeId> {
    let mut r = Retiming::zero_for(g);
    for &v in set {
        r.bump(v, 1);
    }
    if let Some(bad) = g.deps().find(|&e| r.retimed_delay(g, e) < 0) {
        return Err(bad);
    }
    Ok(r.apply(g))
}

/// The boundary of `set` in `g`: edges entering the set from outside
/// and edges leaving it — the only edges a rotation changes (internal
/// and self edges get `+1 - 1 = 0`).
fn rotation_boundary(g: &Csdfg, set: &[NodeId]) -> (Vec<EdgeId>, Vec<EdgeId>) {
    let mut in_set = vec![false; g.graph().node_bound()];
    for &v in set {
        in_set[v.index()] = true;
    }
    let mut entering = Vec::new();
    let mut leaving = Vec::new();
    for &v in set {
        for e in g.in_deps(v) {
            let (u, _) = g.endpoints(e);
            if !in_set[u.index()] {
                entering.push(e);
            }
        }
        for e in g.out_deps(v) {
            let (_, w) = g.endpoints(e);
            if !in_set[w.index()] {
                leaving.push(e);
            }
        }
    }
    (entering, leaving)
}

/// In-place [`rotate`]: retimes every node of `set` by `+1` directly on
/// `g`, touching only the set's boundary edges instead of cloning the
/// graph.  On `Err(edge)` (an incoming boundary edge carries no delay)
/// `g` is left unmodified.  [`unrotate_in_place`] with the same set is
/// the exact inverse.
pub fn rotate_in_place(g: &mut Csdfg, set: &[NodeId]) -> Result<(), EdgeId> {
    let (entering, leaving) = rotation_boundary(g, set);
    if let Some(&bad) = entering.iter().find(|&&e| g.delay(e) == 0) {
        return Err(bad);
    }
    for &e in &leaving {
        let d = g.delay(e);
        g.set_delay(e, d + 1);
    }
    for &e in &entering {
        let d = g.delay(e);
        g.set_delay(e, d - 1);
    }
    Ok(())
}

/// Inverse of [`rotate_in_place`]: retimes every node of `set` by `-1`
/// directly on `g`.
///
/// # Panics
///
/// Panics if some outgoing boundary edge of the set carries no delay
/// (i.e. the rotation being undone was never applied).
pub fn unrotate_in_place(g: &mut Csdfg, set: &[NodeId]) {
    let (entering, leaving) = rotation_boundary(g, set);
    for &e in &entering {
        let d = g.delay(e);
        g.set_delay(e, d + 1);
    }
    for &e in &leaving {
        let d = g.delay(e);
        assert!(
            d > 0,
            "unrotate of a rotation that was never applied: edge {e:?}"
        );
        g.set_delay(e, d - 1);
    }
}

/// The prologue implied by a (normalized, non-negative) retiming: the
/// list of `(node, count)` pairs meaning "execute `node` `count` extra
/// times before entering the steady state".
///
/// With the paper's sign convention, a node retimed by `r(v)` has been
/// moved `r(v)` iterations *ahead* of the loop body, so it must be
/// pre-executed `r(v)` times.
pub fn prologue(g: &Csdfg, r: &Retiming) -> Vec<(NodeId, u32)> {
    g.tasks()
        .filter_map(|v| {
            let k = r.get(v);
            (k > 0).then(|| (v, u32::try_from(k).expect("normalized retiming")))
        })
        .collect()
}

/// The epilogue implied by a retiming: `(node, count)` pairs meaning
/// "execute `node` `count` more times after the last steady-state
/// iteration" — nodes *not* advanced as far as the maximum still owe
/// executions at drain time.
pub fn epilogue(g: &Csdfg, r: &Retiming) -> Vec<(NodeId, u32)> {
    let max = g.tasks().map(|v| r.get(v)).max().unwrap_or(0);
    g.tasks()
        .filter_map(|v| {
            let k = max - r.get(v);
            (k > 0).then(|| (v, u32::try_from(k).expect("max is an upper bound")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1(b) of the paper.
    fn fig1() -> (Csdfg, Vec<NodeId>) {
        let mut g = Csdfg::new();
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| {
                let t = if *n == "B" || *n == "E" { 2 } else { 1 };
                g.add_task(*n, t).unwrap()
            })
            .collect();
        let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(a, c, 0, 1).unwrap();
        g.add_dep(a, e, 0, 1).unwrap();
        g.add_dep(b, d, 0, 1).unwrap();
        g.add_dep(b, e, 0, 2).unwrap();
        g.add_dep(c, e, 0, 1).unwrap();
        g.add_dep(d, a, 3, 3).unwrap();
        g.add_dep(d, f, 0, 2).unwrap();
        g.add_dep(e, f, 0, 1).unwrap();
        g.add_dep(f, e, 1, 1).unwrap();
        (g, ids)
    }

    #[test]
    fn rotating_a_reproduces_figure_1c() {
        // Figure 1(c): rotating A moves one delay from D->A onto A's
        // outgoing edges A->B, A->C, A->E.
        let (g, n) = fig1();
        let a = n[0];
        let rotated = rotate(&g, &[a]).unwrap();
        let da = rotated.graph().find_edge(n[3], a).unwrap();
        assert_eq!(rotated.delay(da), 2);
        for succ in [n[1], n[2], n[4]] {
            let e = rotated.graph().find_edge(a, succ).unwrap();
            assert_eq!(rotated.delay(e), 1);
        }
        // untouched edge
        let bd = rotated.graph().find_edge(n[1], n[3]).unwrap();
        assert_eq!(rotated.delay(bd), 0);
        assert!(rotated.check_legal().is_ok());
    }

    #[test]
    fn rotation_preserves_cycle_delay_sums() {
        let (g, n) = fig1();
        let rotated = rotate(&g, &[n[0]]).unwrap();
        assert_eq!(g.total_delay(), 4);
        // Global sum can change (A has 1 in-edge but 3 out-edges)...
        assert_eq!(rotated.total_delay(), 6);
        // ...but cycle sums are invariant: A->B->D->A and A->E->F(->E)..D->A etc.
        // Check the two simple cycles by hand: A B D A and E F E.
        let cyc1 = [
            rotated.graph().find_edge(n[0], n[1]).unwrap(),
            rotated.graph().find_edge(n[1], n[3]).unwrap(),
            rotated.graph().find_edge(n[3], n[0]).unwrap(),
        ];
        let sum1: u32 = cyc1.iter().map(|&e| rotated.delay(e)).sum();
        assert_eq!(sum1, 3);
        let cyc2 = [
            rotated.graph().find_edge(n[4], n[5]).unwrap(),
            rotated.graph().find_edge(n[5], n[4]).unwrap(),
        ];
        let sum2: u32 = cyc2.iter().map(|&e| rotated.delay(e)).sum();
        assert_eq!(sum2, 1);
    }

    #[test]
    fn illegal_rotation_is_rejected() {
        let (g, n) = fig1();
        // B's incoming edge A->B has no delay: rotating {B} is illegal.
        let err = rotate(&g, &[n[1]]).unwrap_err();
        let (u, v) = g.endpoints(err);
        assert_eq!((u, v), (n[0], n[1]));
    }

    #[test]
    fn rotating_a_set_ignores_internal_edges() {
        // Rotating {A, B} together: edge A->B is internal, so its delay
        // is unchanged even though it is zero.
        let (g, n) = fig1();
        // A and B can only rotate together if B's other incoming edges
        // (there are none besides A->B) carry delays. Legal here.
        let rotated = rotate(&g, &[n[0], n[1]]).unwrap();
        let ab = rotated.graph().find_edge(n[0], n[1]).unwrap();
        assert_eq!(rotated.delay(ab), 0);
        let bd = rotated.graph().find_edge(n[1], n[3]).unwrap();
        assert_eq!(rotated.delay(bd), 1);
        let da = rotated.graph().find_edge(n[3], n[0]).unwrap();
        assert_eq!(rotated.delay(da), 2);
    }

    #[test]
    fn apply_and_legality() {
        let (g, n) = fig1();
        let mut r = Retiming::zero_for(&g);
        r.bump(n[0], 1);
        assert!(r.is_legal(&g));
        r.bump(n[1], -1);
        // B->D would become 0 + (-1) - 0 = -1 < 0? No: edge B->D has
        // src=B so delta = r(B) - r(D) = -1: illegal.
        assert!(!r.is_legal(&g));
    }

    #[test]
    #[should_panic(expected = "illegal retiming")]
    fn apply_panics_on_illegal() {
        let (g, n) = fig1();
        let mut r = Retiming::zero_for(&g);
        r.bump(n[1], -1);
        let _ = r.apply(&g);
    }

    #[test]
    fn normalize_shifts_minimum_to_zero() {
        let (g, n) = fig1();
        let mut r = Retiming::zero_for(&g);
        r.set(n[0], 3);
        r.set(n[1], 1);
        for v in g.tasks() {
            if v != n[0] && v != n[1] {
                r.set(v, 1);
            }
        }
        r.normalize(&g);
        assert_eq!(r.get(n[1]), 0);
        assert_eq!(r.get(n[0]), 2);
    }

    #[test]
    fn compose_adds_pointwise() {
        let (g, n) = fig1();
        let mut r1 = Retiming::zero_for(&g);
        r1.bump(n[0], 1);
        let mut r2 = Retiming::zero_for(&g);
        r2.bump(n[0], 2);
        r2.bump(n[4], 1);
        r1.compose(&r2);
        assert_eq!(r1.get(n[0]), 3);
        assert_eq!(r1.get(n[4]), 1);
    }

    #[test]
    fn prologue_and_epilogue_counts() {
        let (g, n) = fig1();
        let mut r = Retiming::zero_for(&g);
        r.set(n[0], 2);
        r.set(n[1], 1);
        let pro = prologue(&g, &r);
        assert!(pro.contains(&(n[0], 2)));
        assert!(pro.contains(&(n[1], 1)));
        assert_eq!(pro.len(), 2);
        let epi = epilogue(&g, &r);
        // max r = 2: A owes 0, B owes 1, others owe 2.
        assert!(epi.contains(&(n[1], 1)));
        assert!(epi.contains(&(n[5], 2)));
        assert_eq!(epi.len(), 5);
    }

    #[test]
    fn zero_retiming_apply_is_identity() {
        let (g, _) = fig1();
        let r = Retiming::zero_for(&g);
        let g2 = r.apply(&g);
        for e in g.deps() {
            assert_eq!(g.delay(e), g2.delay(e));
        }
    }

    #[test]
    fn display_shows_values() {
        let (g, n) = fig1();
        let mut r = Retiming::zero_for(&g);
        r.bump(n[0], 1);
        assert_eq!(r.to_string(), "r = [1, 0, 0, 0, 0, 0]");
    }
}

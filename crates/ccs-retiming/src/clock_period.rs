//! Minimum clock-period retiming (Leiserson–Saxe `FEAS`).
//!
//! Given a CSDFG, find a legal retiming minimizing the *clock period*
//! `Φ(G_r)`: the longest chain of computation connected by zero-delay
//! edges.  The paper's rotation phase "holds every property of the
//! retiming operation" (§4); this module provides the analytic optimum
//! that rotation-based compaction can be compared against when
//! resources and communication are ignored.

use crate::retiming::Retiming;
use ccs_model::{Csdfg, NodeId};

/// The clock period `Φ(g)`: maximum over nodes of the longest
/// zero-delay path ending at that node, counting computation times.
///
/// # Panics
///
/// Panics if the zero-delay sub-graph is cyclic (illegal CSDFG).
pub fn clock_period(g: &Csdfg) -> u32 {
    deltas(g).into_iter().max().unwrap_or(0)
}

/// `Δ(v)` for every node (indexed by `NodeId::index`): the longest
/// zero-delay chain ending at `v`, inclusive of `t(v)`.
fn deltas(g: &Csdfg) -> Vec<u32> {
    let order = g
        .zero_delay_topo()
        .expect("illegal CSDFG: zero-delay cycle");
    let mut delta = vec![0u32; g.graph().node_bound()];
    for &v in &order {
        let mut best = 0;
        for e in g.intra_iter_in_deps(v) {
            let (u, _) = g.endpoints(e);
            best = best.max(delta[u.index()]);
        }
        delta[v.index()] = best + g.time(v);
    }
    delta
}

/// A longest zero-delay chain of `g` (the chain attaining
/// [`clock_period`]), as a node sequence in execution order.  Empty
/// for an empty graph.
///
/// Deterministic: among equally long chains, the one ending at the
/// smallest node id is returned, extended backwards through the
/// smallest-id predecessor at each step.  Used by the bound engine as
/// the witness of a critical-path certificate.
///
/// # Panics
///
/// Panics if the zero-delay sub-graph is cyclic (illegal CSDFG).
pub fn critical_chain(g: &Csdfg) -> Vec<NodeId> {
    let delta = deltas(g);
    let Some(end) = g.tasks().min_by_key(|v| {
        // max Δ first, then smallest id (tasks() yields ascending ids,
        // min_by_key keeps the first maximum).
        std::cmp::Reverse(delta[v.index()])
    }) else {
        return Vec::new();
    };
    let mut chain = vec![end];
    let mut v = end;
    loop {
        let need = delta[v.index()] - g.time(v);
        if need == 0 {
            break;
        }
        let pred = g
            .intra_iter_in_deps(v)
            .map(|e| g.endpoints(e).0)
            .filter(|u| delta[u.index()] == need)
            .min()
            .expect("Δ accounting guarantees a binding predecessor");
        chain.push(pred);
        v = pred;
    }
    chain.reverse();
    chain
}

/// Tests whether clock period `c` is achievable by some legal retiming
/// (the `FEAS` algorithm).  On success returns the witness retiming in
/// the *paper's* sign convention, normalized to non-negative values.
pub fn feasible(g: &Csdfg, c: u32) -> Option<Retiming> {
    let n = g.task_count();
    // Work in Leiserson-Saxe convention internally:
    // d_ls(u->v) = d + r_ls(v) - r_ls(u); paper convention is negated.
    let mut r_ls = vec![0i64; g.graph().node_bound()];
    let mut current = g.clone();
    for _ in 0..n.saturating_sub(1) {
        let delta = deltas(&current);
        let mut changed = false;
        for v in g.tasks() {
            if delta[v.index()] > c {
                r_ls[v.index()] += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Re-apply from scratch to keep arithmetic simple.
        let mut r = Retiming::zero_for(g);
        for v in g.tasks() {
            r.set(v, -r_ls[v.index()]);
        }
        if !r.is_legal(g) {
            // FEAS guarantees legality for feasible c; an illegal
            // intermediate only happens when c is infeasible.
            return None;
        }
        current = r.apply(g);
    }
    if clock_period(&current) <= c {
        let mut r = Retiming::zero_for(g);
        for v in g.tasks() {
            r.set(v, -r_ls[v.index()]);
        }
        r.normalize(g);
        Some(r)
    } else {
        None
    }
}

/// Minimum achievable clock period and a witness retiming.
///
/// Binary search over `c` in `[max_v t(v), Φ(G)]` using [`feasible`].
pub fn min_clock_period(g: &Csdfg) -> (u32, Retiming) {
    let lo0 = g.tasks().map(|v| g.time(v)).max().unwrap_or(0);
    let hi0 = clock_period(g);
    let (mut lo, mut hi) = (lo0, hi0);
    let mut best = (hi0, Retiming::zero_for(g));
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        match feasible(g, mid) {
            Some(r) => {
                best = (mid, r);
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
            None => lo = mid + 1,
        }
    }
    best
}

/// Convenience: the retimed graph achieving the minimum clock period.
pub fn retime_min_period(g: &Csdfg) -> (u32, Csdfg) {
    let (c, r) = min_clock_period(g);
    (c, r.apply(g))
}

#[allow(unused)]
fn _assert_node_id_used(v: NodeId) {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-node loop: A(1) -> B(1) -> C(1) -> A with 2 delays on C->A.
    fn loop3() -> (Csdfg, [NodeId; 3]) {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        let c = g.add_task("C", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, c, 0, 1).unwrap();
        g.add_dep(c, a, 2, 1).unwrap();
        (g, [a, b, c])
    }

    #[test]
    fn clock_period_counts_zero_delay_chains() {
        let (g, _) = loop3();
        assert_eq!(clock_period(&g), 3);
    }

    #[test]
    fn min_period_of_loop3_is_two() {
        // Iteration bound is 3/2, so the best integer period is 2:
        // retiming can split the chain A-B-C into chains of length <= 2.
        let (g, _) = loop3();
        let (c, r) = min_clock_period(&g);
        assert_eq!(c, 2);
        assert!(r.is_legal(&g));
        let retimed = r.apply(&g);
        assert_eq!(clock_period(&retimed), 2);
        assert!(retimed.check_legal().is_ok());
    }

    #[test]
    fn feasible_rejects_below_iteration_bound() {
        let (g, _) = loop3();
        // Period 1 would need T(C)/D(C) = 3/2 <= 1: impossible.
        assert!(feasible(&g, 1).is_none());
        assert!(feasible(&g, 2).is_some());
        assert!(feasible(&g, 3).is_some());
    }

    #[test]
    fn correlator_example() {
        // The classic Leiserson-Saxe correlator has min period 13 with
        // adders of weight 7 and comparators of weight 3.
        // Simplified version: host(0 would be invalid, use 1) .. keep a
        // smaller analogue: chain of 3 weight-3 nodes and one weight-7,
        // one delay per edge on the return path.
        let mut g = Csdfg::new();
        let d1 = g.add_task("c1", 3).unwrap();
        let d2 = g.add_task("c2", 3).unwrap();
        let d3 = g.add_task("c3", 3).unwrap();
        let a1 = g.add_task("a1", 7).unwrap();
        g.add_dep(d1, d2, 1, 1).unwrap();
        g.add_dep(d2, d3, 1, 1).unwrap();
        g.add_dep(d3, a1, 0, 1).unwrap();
        g.add_dep(a1, d1, 1, 1).unwrap();
        // Initial period: d3 -> a1 chain = 10.
        assert_eq!(clock_period(&g), 10);
        let (c, _) = min_clock_period(&g);
        // Iteration bound = (3+3+3+7)/3 = 16/3 ≈ 5.33; but a single node
        // of weight 7 floors the period at 7, and retiming can reach it.
        assert_eq!(c, 7);
    }

    #[test]
    fn acyclic_pipeline_reaches_max_node_time() {
        // A(2) -> B(3) -> C(2), delays 1 on each edge already: period 3.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 2).unwrap();
        let b = g.add_task("B", 3).unwrap();
        let c = g.add_task("C", 2).unwrap();
        g.add_dep(a, b, 1, 1).unwrap();
        g.add_dep(b, c, 1, 1).unwrap();
        assert_eq!(clock_period(&g), 3);
        let (p, _) = min_clock_period(&g);
        assert_eq!(p, 3);
    }

    #[test]
    fn acyclic_chain_can_be_fully_pipelined() {
        // Zero-delay chain A(1)->B(1)->C(1): an acyclic graph can be
        // retimed arbitrarily (insert pipeline stages): period 1.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        let c = g.add_task("C", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, c, 0, 1).unwrap();
        let (p, r) = min_clock_period(&g);
        assert_eq!(p, 1);
        let retimed = r.apply(&g);
        for e in retimed.deps() {
            assert!(retimed.delay(e) >= 1);
        }
    }

    #[test]
    fn retime_min_period_returns_retimed_graph() {
        let (g, _) = loop3();
        let (c, retimed) = retime_min_period(&g);
        assert_eq!(clock_period(&retimed), c);
        // Cycle delay sum invariant.
        assert_eq!(retimed.total_delay(), g.total_delay());
    }

    #[test]
    fn critical_chain_matches_clock_period() {
        let (g, [a, b, c]) = loop3();
        // Zero-delay chain A -> B -> C carries the whole period.
        assert_eq!(critical_chain(&g), vec![a, b, c]);
        let total: u32 = critical_chain(&g).iter().map(|&v| g.time(v)).sum();
        assert_eq!(total, clock_period(&g));
    }

    #[test]
    fn critical_chain_single_node_when_fully_pipelined() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 2).unwrap();
        let b = g.add_task("B", 5).unwrap();
        g.add_dep(a, b, 1, 1).unwrap();
        // No zero-delay edges: the chain is the heaviest single node.
        assert_eq!(critical_chain(&g), vec![b]);
    }

    #[test]
    fn min_period_never_below_heaviest_node() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 9).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 5, 1).unwrap();
        let (c, _) = min_clock_period(&g);
        assert_eq!(c, 9);
    }
}

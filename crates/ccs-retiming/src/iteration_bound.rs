//! The iteration bound (maximum cycle ratio) of a CSDFG.
//!
//! For a cyclic data-flow graph the *iteration bound*
//! `B = max over cycles C of  T(C) / D(C)`
//! (total computation time over total delay count) lower-bounds the
//! achievable steady-state initiation interval of any schedule, no
//! matter how many processors are available and ignoring communication.
//! The experiment harness uses it to report how close cyclo-compaction
//! gets to the algorithmic optimum.
//!
//! Implementation: the classical lambda test.  A candidate ratio `λ` is
//! too small iff the graph with edge weights `λ·d(e) - t(src(e))` has a
//! negative cycle.  We binary-search `λ`, then recover the exact
//! rational via a bounded continued-fraction expansion (the bound is
//! `D(C) <= total delay`, so the denominator is small) and verify it
//! with exact integer arithmetic.

use ccs_graph::algo::paths::feasible_potentials;
use ccs_model::Csdfg;
use std::fmt;

/// An exact non-negative rational, kept in lowest terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ratio {
    /// Numerator.
    pub num: u64,
    /// Denominator (non-zero).
    pub den: u64,
}

impl Ratio {
    /// Builds `num/den` reduced to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "zero denominator");
        let g = gcd(num.max(1), den);
        let g = if num == 0 { den } else { g };
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    /// Floating approximation.
    pub fn as_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Smallest integer `>= self` — the minimum integral initiation
    /// interval implied by this bound.
    pub fn ceil(self) -> u64 {
        self.num.div_ceil(self.den)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.num as u128 * other.den as u128).cmp(&(other.num as u128 * self.den as u128))
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// `true` iff some cycle has `T(C)/D(C) > num/den`, via exact integer
/// negative-cycle detection on weights `num·d(e) - den·t(src(e))`.
fn exceeds(g: &Csdfg, num: u64, den: u64) -> bool {
    // Values stay well below 2^53, so f64 arithmetic is exact here.
    feasible_potentials(g.graph(), |e| {
        let (u, _) = g.endpoints(e);
        num as f64 * f64::from(g.delay(e)) - den as f64 * f64::from(g.time(u))
    })
    .is_err()
}

/// Computes the iteration bound of `g`.
///
/// Returns `None` for acyclic graphs (no cycle, no bound).
///
/// # Panics
///
/// Panics if `g` has a zero-delay cycle (illegal CSDFG — the bound
/// would be infinite).
pub fn iteration_bound(g: &Csdfg) -> Option<Ratio> {
    use ccs_graph::algo::cycles::has_cycle;
    if !has_cycle(g.graph()) {
        return None;
    }
    assert!(
        g.check_legal().is_ok(),
        "iteration bound undefined: graph has a zero-delay cycle"
    );

    let d_total: u64 = g.total_delay();
    let t_total: u64 = g.total_time();
    // Binary search on λ: exceeds(λ) is monotone decreasing in λ.
    let (mut lo, mut hi) = (0.0f64, t_total as f64 + 1.0);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        // mid as rational approx for the exact test: scale by 2^20.
        let den = 1u64 << 20;
        let num = (mid * den as f64) as u64;
        if exceeds(g, num, den) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // The exact bound is a rational with denominator <= d_total.
    let candidate = best_rational(0.5 * (lo + hi), d_total.max(1));
    // Verify and adjust: the bound B satisfies !exceeds(B) and
    // exceeds(B - 1/(den*d_total)) — nudge if the approximation landed
    // one step off.
    let mut best: Option<Ratio> = None;
    for (dn, dd) in [(0i64, 0i64), (-1, 0), (1, 0), (0, 1), (0, -1)] {
        let num = candidate.num as i64 + dn;
        let den = candidate.den as i64 + dd;
        if num < 0 || den <= 0 {
            continue;
        }
        let r = Ratio::new(num as u64, den as u64);
        if !exceeds(g, r.num, r.den) && is_tight(g, r) {
            best = Some(match best {
                Some(b) if b <= r => b,
                _ => r,
            });
        }
    }
    best.or_else(|| {
        // Fallback: exhaustive scan over all denominators (small graphs).
        for den in 1..=d_total {
            for num in 0..=t_total * den {
                let r = Ratio::new(num, den);
                if !exceeds(g, r.num, r.den) && is_tight(g, r) {
                    return Some(r);
                }
            }
        }
        None
    })
}

/// The iteration bound together with a *witness*: one critical cycle
/// `C` (as a node sequence, `[a, b, c]` meaning `a -> b -> c -> a`)
/// attaining `T(C)/D(C) = B`.
///
/// Returns `None` for acyclic graphs.  Deterministic: the tight-edge
/// sub-graph is scanned in node/edge id order, so the same graph
/// always yields the same witness.
///
/// # Panics
///
/// Panics if `g` has a zero-delay cycle (illegal CSDFG).
pub fn critical_cycle(g: &Csdfg) -> Option<(Ratio, Vec<ccs_graph::NodeId>)> {
    let r = iteration_bound(g)?;
    // Potentials for the exact bound exist (the bound is feasible);
    // tight edges (pot[v] == pot[u] + w) form a sub-graph whose every
    // cycle is zero-weight, i.e. attains exactly ratio r.
    let pot = feasible_potentials(g.graph(), |e| {
        let (u, _) = g.endpoints(e);
        r.num as f64 * f64::from(g.delay(e)) - r.den as f64 * f64::from(g.time(u))
    })
    .ok()?;
    let graph = g.graph();
    let cycle = ccs_graph::algo::cycles::find_cycle_filtered(graph, |e| {
        let (u, v) = graph.edge_endpoints(e);
        let w = r.num as f64 * f64::from(g.delay(e)) - r.den as f64 * f64::from(g.time(u));
        (pot[v.index()] - pot[u.index()] - w).abs() < 1e-6
    })?;
    Some((r, cycle))
}

/// `true` iff some cycle attains ratio exactly `r` (there is a
/// zero-weight cycle under weights `r.num·d - r.den·t`).
fn is_tight(g: &Csdfg, r: Ratio) -> bool {
    let Ok(pot) = feasible_potentials(g.graph(), |e| {
        let (u, _) = g.endpoints(e);
        r.num as f64 * f64::from(g.delay(e)) - r.den as f64 * f64::from(g.time(u))
    }) else {
        return false;
    };
    // Tight edges: pot[v] == pot[u] + w(e). A cycle of tight edges is a
    // critical cycle.
    let graph = g.graph();
    let tight = |e| {
        let (u, v) = graph.edge_endpoints(e);
        let w = r.num as f64 * f64::from(g.delay(e)) - r.den as f64 * f64::from(g.time(u));
        (pot[v.index()] - pot[u.index()] - w).abs() < 1e-6
    };
    !ccs_graph::algo::topo::is_acyclic_filtered(graph, tight)
}

/// Best rational approximation of `x` with denominator `<= max_den`
/// (continued fractions).
fn best_rational(x: f64, max_den: u64) -> Ratio {
    let mut a = x.floor();
    let (mut p0, mut q0, mut p1, mut q1) = (1u64, 0u64, a as u64, 1u64);
    let mut frac = x - a;
    for _ in 0..64 {
        if frac.abs() < 1e-12 {
            break;
        }
        let inv = 1.0 / frac;
        a = inv.floor();
        frac = inv - a;
        let p2 = (a as u64).saturating_mul(p1).saturating_add(p0);
        let q2 = (a as u64).saturating_mul(q1).saturating_add(q0);
        if q2 > max_den {
            break;
        }
        p0 = p1;
        q0 = q1;
        p1 = p2;
        q1 = q2;
    }
    Ratio::new(p1, q1.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_basics() {
        let r = Ratio::new(6, 4);
        assert_eq!((r.num, r.den), (3, 2));
        assert_eq!(r.to_string(), "3/2");
        assert_eq!(r.ceil(), 2);
        assert_eq!(Ratio::new(4, 2).to_string(), "2");
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert_eq!(Ratio::new(0, 7), Ratio::new(0, 3));
    }

    #[test]
    fn simple_loop_bound() {
        // A(1) -> B(2) -> A with 1 delay: bound = 3/1.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 1, 1).unwrap();
        assert_eq!(iteration_bound(&g), Some(Ratio::new(3, 1)));
    }

    #[test]
    fn two_delays_halve_the_bound() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 2, 1).unwrap();
        assert_eq!(iteration_bound(&g), Some(Ratio::new(3, 2)));
    }

    #[test]
    fn max_over_multiple_cycles() {
        // Cycle 1: A->B->A, T=3, D=3 => 1. Cycle 2: C->C self loop T=5 D=2 => 5/2.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        let c = g.add_task("C", 5).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 3, 1).unwrap();
        g.add_dep(c, c, 2, 1).unwrap();
        g.add_dep(a, c, 0, 1).unwrap();
        assert_eq!(iteration_bound(&g), Some(Ratio::new(5, 2)));
    }

    #[test]
    fn acyclic_graph_has_no_bound() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        assert_eq!(iteration_bound(&g), None);
    }

    #[test]
    fn paper_fig1_bound() {
        // Cycles: A->B->D->A (T=4, D=3), E->F->E (T=3, D=1),
        // A->E->F? F->E only; A->C->E->F->E no (E->F->E is the only F cycle
        // through delay) — also A->E..? no edge back to A except D->A.
        // Other cycle: A->B->E? E has no edge to D or A. So max(4/3, 3/1) = 3.
        let mut g = Csdfg::new();
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| {
                let t = if *n == "B" || *n == "E" { 2 } else { 1 };
                g.add_task(*n, t).unwrap()
            })
            .collect();
        let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(a, c, 0, 1).unwrap();
        g.add_dep(a, e, 0, 1).unwrap();
        g.add_dep(b, d, 0, 1).unwrap();
        g.add_dep(b, e, 0, 2).unwrap();
        g.add_dep(c, e, 0, 1).unwrap();
        g.add_dep(d, a, 3, 3).unwrap();
        g.add_dep(d, f, 0, 2).unwrap();
        g.add_dep(e, f, 0, 1).unwrap();
        g.add_dep(f, e, 1, 1).unwrap();
        assert_eq!(iteration_bound(&g), Some(Ratio::new(3, 1)));
    }

    #[test]
    fn bound_is_invariant_under_rotation() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 2).unwrap();
        let b = g.add_task("B", 3).unwrap();
        let c = g.add_task("C", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, c, 0, 1).unwrap();
        g.add_dep(c, a, 2, 1).unwrap();
        let before = iteration_bound(&g).unwrap();
        let rotated = crate::retiming::rotate(&g, &[a]).unwrap();
        let after = iteration_bound(&rotated).unwrap();
        assert_eq!(before, after);
        assert_eq!(before, Ratio::new(6, 2));
    }

    #[test]
    fn slowdown_divides_the_bound() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 3).unwrap();
        g.add_dep(a, a, 1, 1).unwrap();
        let b1 = iteration_bound(&g).unwrap();
        assert_eq!(b1, Ratio::new(3, 1));
        let g3 = ccs_model::transform::slowdown(&g, 3);
        let b3 = iteration_bound(&g3).unwrap();
        assert_eq!(b3, Ratio::new(1, 1));
    }

    #[test]
    fn critical_cycle_witnesses_the_bound() {
        // Cycle 1: A->B->A, T=3, D=3 => 1. Cycle 2: C self loop, 5/2.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        let c = g.add_task("C", 5).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 3, 1).unwrap();
        g.add_dep(c, c, 2, 1).unwrap();
        g.add_dep(a, c, 0, 1).unwrap();
        let (r, cycle) = critical_cycle(&g).unwrap();
        assert_eq!(r, Ratio::new(5, 2));
        assert_eq!(cycle, vec![c]);
        // The witness attains the bound exactly.
        let t: u64 = cycle.iter().map(|&v| u64::from(g.time(v))).sum();
        assert_eq!(Ratio::new(t, 2), r);
    }

    #[test]
    fn critical_cycle_none_for_acyclic() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        assert!(critical_cycle(&g).is_none());
    }

    #[test]
    #[should_panic(expected = "zero-delay cycle")]
    fn zero_delay_cycle_panics() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 0, 1).unwrap();
        let _ = iteration_bound(&g);
    }
}

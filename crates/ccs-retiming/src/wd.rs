//! The Leiserson–Saxe `W`/`D` matrices and the matrix-based minimum
//! clock-period retiming (`OPT1`), cross-checking the iterative `FEAS`
//! implementation in [`clock_period`](crate::clock_period).
//!
//! For nodes `u, v` connected by some path:
//!
//! * `W(u, v)` — the minimum total delay over all `u -> v` paths;
//! * `D(u, v)` — the maximum total computation time over the
//!   *minimum-delay* paths (inclusive of both endpoints).
//!
//! A clock period `c` is achievable iff the constraint system
//! `r(v) - r(u) <= d(e)` (legality, this library's sign convention) and
//! `r(v) - r(u) <= W(u,v) - 1` for every pair with `D(u,v) > c` has a
//! solution, found by Bellman–Ford on the constraint graph.

use crate::retiming::Retiming;
use ccs_model::{Csdfg, NodeId};

/// The `W` and `D` matrices of a CSDFG, dense over raw node indices;
/// unconnected pairs hold `None`.
#[derive(Clone, Debug)]
pub struct WdMatrices {
    n: usize,
    w: Vec<Option<(u64, u64)>>, // (W, max total time on min-delay path)
}

impl WdMatrices {
    /// Computes the matrices by Floyd–Warshall over lexicographic
    /// `(delay, -time)` path weights.  `O(V^3)`.
    pub fn new(g: &Csdfg) -> Self {
        let n = g.graph().node_bound();
        // dist[u][v] = (min delay, max path time at that delay)
        let mut w: Vec<Option<(u64, u64)>> = vec![None; n * n];
        let at = |u: usize, v: usize| u * n + v;
        for v in g.tasks() {
            // Trivial path: the node itself.
            w[at(v.index(), v.index())] = Some((0, u64::from(g.time(v))));
        }
        for e in g.deps() {
            let (u, v) = g.endpoints(e);
            if u == v {
                continue; // self loop is never a *shortest* useful path
            }
            let cand = (
                u64::from(g.delay(e)),
                u64::from(g.time(u)) + u64::from(g.time(v)),
            );
            let slot = &mut w[at(u.index(), v.index())];
            *slot = Some(match *slot {
                None => cand,
                Some(cur) => better(cur, cand),
            });
        }
        let live: Vec<usize> = g.tasks().map(|v| v.index()).collect();
        for &k in &live {
            for &i in &live {
                let Some((dik, tik)) = w[at(i, k)] else {
                    continue;
                };
                for &j in &live {
                    let Some((dkj, tkj)) = w[at(k, j)] else {
                        continue;
                    };
                    if i == k || j == k {
                        continue;
                    }
                    // time of concatenated path counts k once.
                    let tk = tik + tkj - time_of(g, k);
                    let cand = (dik + dkj, tk);
                    let slot = &mut w[at(i, j)];
                    *slot = Some(match *slot {
                        None => cand,
                        Some(cur) => better(cur, cand),
                    });
                }
            }
        }
        WdMatrices { n, w }
    }

    /// `W(u, v)`: minimum path delay, `None` if `v` is unreachable.
    pub fn w(&self, u: NodeId, v: NodeId) -> Option<u64> {
        self.w[u.index() * self.n + v.index()].map(|(d, _)| d)
    }

    /// `D(u, v)`: maximum computation over minimum-delay paths.
    pub fn d(&self, u: NodeId, v: NodeId) -> Option<u64> {
        self.w[u.index() * self.n + v.index()].map(|(_, t)| t)
    }

    /// All distinct `D` values, sorted: the candidate clock periods.
    pub fn candidate_periods(&self) -> Vec<u64> {
        let mut ds: Vec<u64> = self.w.iter().flatten().map(|&(_, t)| t).collect();
        ds.sort_unstable();
        ds.dedup();
        ds
    }
}

fn better(cur: (u64, u64), cand: (u64, u64)) -> (u64, u64) {
    // lexicographic: smaller delay wins; equal delay keeps larger time.
    match cand.0.cmp(&cur.0) {
        std::cmp::Ordering::Less => cand,
        std::cmp::Ordering::Greater => cur,
        std::cmp::Ordering::Equal => (cur.0, cur.1.max(cand.1)),
    }
}

fn time_of(g: &Csdfg, raw: usize) -> u64 {
    u64::from(g.time(NodeId::from_index(raw)))
}

/// Tests period `c` via the `W`/`D` constraint system; returns a
/// witness retiming (paper sign convention, normalized) on success.
pub fn feasible_wd(g: &Csdfg, wd: &WdMatrices, c: u64) -> Option<Retiming> {
    // Constraint graph on live nodes: edge (u -> v, weight) encodes
    // r(v) <= r(u) + weight.
    let mut constraints: Vec<(usize, usize, f64)> = Vec::new();
    for e in g.deps() {
        let (u, v) = g.endpoints(e);
        constraints.push((u.index(), v.index(), f64::from(g.delay(e))));
    }
    for u in g.tasks() {
        for v in g.tasks() {
            if let (Some(wuv), Some(duv)) = (wd.w(u, v), wd.d(u, v)) {
                if duv > c {
                    if u == v {
                        return None; // a single chain through u exceeds c
                    }
                    constraints.push((u.index(), v.index(), wuv as f64 - 1.0));
                }
            }
        }
    }
    // Bellman-Ford from a virtual source at potential 0.
    let bound = g.graph().node_bound();
    let mut pot = vec![0.0f64; bound];
    let n = g.task_count().max(1);
    for round in 0..=n {
        let mut changed = false;
        for &(u, v, wgt) in &constraints {
            if pot[u] + wgt < pot[v] - 1e-9 {
                pot[v] = pot[u] + wgt;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if round == n {
            return None; // negative cycle: infeasible
        }
    }
    let mut r = Retiming::zero(bound);
    for v in g.tasks() {
        // potentials: r(v) = pot[v] (paper convention satisfies
        // r(v) - r(u) <= d(e) directly).
        r.set(v, pot[v.index()].round() as i64);
    }
    if !r.is_legal(g) {
        return None;
    }
    r.normalize(g);
    Some(r)
}

/// Minimum clock period via binary search over the candidate `D`
/// values (the `OPT1` algorithm), with a witness retiming.
pub fn min_clock_period_wd(g: &Csdfg) -> (u32, Retiming) {
    let wd = WdMatrices::new(g);
    let candidates = wd.candidate_periods();
    let mut best: Option<(u64, Retiming)> = None;
    let (mut lo, mut hi) = (0usize, candidates.len().saturating_sub(1));
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        let c = candidates[mid];
        match feasible_wd(g, &wd, c) {
            Some(r) => {
                best = Some((c, r));
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
            None => lo = mid + 1,
        }
    }
    let (c, r) = best.expect("the original period is always feasible");
    (u32::try_from(c).expect("period fits u32"), r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock_period::{clock_period, min_clock_period};

    fn loop3() -> Csdfg {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        let c = g.add_task("C", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, c, 0, 1).unwrap();
        g.add_dep(c, a, 2, 1).unwrap();
        g
    }

    #[test]
    fn w_and_d_on_the_triangle() {
        let g = loop3();
        let wd = WdMatrices::new(&g);
        let (a, b, c) = (
            g.task_by_name("A").unwrap(),
            g.task_by_name("B").unwrap(),
            g.task_by_name("C").unwrap(),
        );
        assert_eq!(wd.w(a, b), Some(0));
        assert_eq!(wd.d(a, b), Some(2));
        assert_eq!(wd.w(a, c), Some(0));
        assert_eq!(wd.d(a, c), Some(3));
        assert_eq!(wd.w(c, a), Some(2));
        assert_eq!(wd.d(c, a), Some(2));
        assert_eq!(wd.w(a, a), Some(0));
        assert_eq!(wd.d(a, a), Some(1));
        // b -> a goes through c: W = 2, D = 3.
        assert_eq!(wd.w(b, a), Some(2));
        assert_eq!(wd.d(b, a), Some(3));
    }

    #[test]
    fn candidates_contain_all_chain_lengths() {
        let g = loop3();
        let wd = WdMatrices::new(&g);
        assert_eq!(wd.candidate_periods(), vec![1, 2, 3]);
    }

    #[test]
    fn wd_min_period_matches_feas() {
        let g = loop3();
        let (feas, _) = min_clock_period(&g);
        let (wd, r) = min_clock_period_wd(&g);
        assert_eq!(feas, wd);
        assert_eq!(clock_period(&r.apply(&g)), wd);
    }

    #[test]
    fn unreachable_pairs_are_none() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        let wd = WdMatrices::new(&g);
        assert_eq!(wd.w(b, a), None);
        assert_eq!(wd.d(b, a), None);
    }

    #[test]
    fn parallel_edges_keep_min_delay() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 2).unwrap();
        let b = g.add_task("B", 3).unwrap();
        g.add_dep(a, b, 4, 1).unwrap();
        g.add_dep(a, b, 1, 1).unwrap();
        g.add_dep(b, a, 1, 1).unwrap();
        let wd = WdMatrices::new(&g);
        assert_eq!(wd.w(a, b), Some(1));
        assert_eq!(wd.d(a, b), Some(5));
    }

    #[test]
    fn infeasible_when_single_node_exceeds_c() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 9).unwrap();
        g.add_dep(a, a, 1, 1).unwrap();
        let wd = WdMatrices::new(&g);
        assert!(feasible_wd(&g, &wd, 8).is_none());
        assert!(feasible_wd(&g, &wd, 9).is_some());
    }
}

//! Recursive-descent parser for the loop-kernel language.

use crate::ast::{Assign, BinOp, Expr, Kernel};
use crate::token::{lex, LangError, Token, TokenKind};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> (usize, usize) {
        self.peek()
            .map(|t| (t.line, t.col))
            .or_else(|| self.tokens.last().map(|t| (t.line, t.col + 1)))
            .unwrap_or((1, 1))
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, LangError> {
        match self.next() {
            Some(t) if t.kind == *kind => Ok(t),
            Some(t) => Err(LangError::new(
                t.line,
                t.col,
                format!("expected {what}, found {}", t.kind),
            )),
            None => {
                let (l, c) = self.here();
                Err(LangError::new(
                    l,
                    c,
                    format!("expected {what}, found end of input"),
                ))
            }
        }
    }

    fn parse_kernel(&mut self) -> Result<Kernel, LangError> {
        let mut assigns = Vec::new();
        while self.peek().is_some() {
            assigns.push(self.parse_assign()?);
        }
        Ok(Kernel { assigns })
    }

    fn parse_assign(&mut self) -> Result<Assign, LangError> {
        let (target, line) = match self.next() {
            Some(Token {
                kind: TokenKind::Ident(name),
                line,
                ..
            }) => (name, line),
            Some(t) => {
                return Err(LangError::new(
                    t.line,
                    t.col,
                    format!("expected a variable name, found {}", t.kind),
                ))
            }
            None => unreachable!("caller checked peek"),
        };
        self.expect(&TokenKind::Assign, "'='")?;
        let value = self.parse_expr()?;
        self.expect(&TokenKind::Semi, "';'")?;
        Ok(Assign {
            target,
            value,
            line,
        })
    }

    fn parse_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.parse_term()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_factor()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.parse_factor()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self) -> Result<Expr, LangError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Minus,
                ..
            }) => Ok(Expr::Neg(Box::new(self.parse_factor()?))),
            Some(Token {
                kind: TokenKind::LParen,
                ..
            }) => {
                let inner = self.parse_expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(inner)
            }
            Some(Token {
                kind: TokenKind::Int(v),
                ..
            }) => Ok(Expr::Const(v.to_string())),
            Some(Token {
                kind: TokenKind::Float(v),
                ..
            }) => Ok(Expr::Const(v)),
            Some(Token {
                kind: TokenKind::Ident(name),
                line,
                col,
            }) => {
                if self.peek().map(|t| &t.kind) == Some(&TokenKind::LBracket) {
                    self.next();
                    self.parse_subscript(name, line, col)
                } else {
                    Ok(Expr::Var { name, line, col })
                }
            }
            Some(t) => Err(LangError::new(
                t.line,
                t.col,
                format!("expected an operand, found {}", t.kind),
            )),
            None => {
                let (l, c) = self.here();
                Err(LangError::new(
                    l,
                    c,
                    "expected an operand, found end of input",
                ))
            }
        }
    }

    /// Parses the `i - K ]` tail of `name[i-K]`.
    fn parse_subscript(
        &mut self,
        name: String,
        line: usize,
        col: usize,
    ) -> Result<Expr, LangError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Ident(ix),
                ..
            }) if ix == "i" => {}
            Some(t) => {
                return Err(LangError::new(
                    t.line,
                    t.col,
                    format!("subscripts must look like [i-K]; found {}", t.kind),
                ))
            }
            None => return Err(LangError::new(line, col, "unterminated subscript")),
        }
        self.expect(&TokenKind::Minus, "'-' in subscript")?;
        let delay = match self.next() {
            Some(Token {
                kind: TokenKind::Int(v),
                line: l,
                col: c,
            }) => {
                if v == 0 {
                    return Err(LangError::new(
                        l,
                        c,
                        "delay 0 in subscript: write the bare variable instead",
                    ));
                }
                v
            }
            Some(t) => {
                return Err(LangError::new(
                    t.line,
                    t.col,
                    format!("expected a delay count, found {}", t.kind),
                ))
            }
            None => return Err(LangError::new(line, col, "unterminated subscript")),
        };
        self.expect(&TokenKind::RBracket, "']'")?;
        Ok(Expr::Delayed {
            name,
            delay,
            line,
            col,
        })
    }
}

/// Parses kernel `source` into an AST.
pub fn parse(source: &str) -> Result<Kernel, LangError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    p.parse_kernel()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_diffeq_kernel() {
        let k = parse(
            "u = u[i-1] - 3*x[i-1]*u[i-1]*dt - 3*y[i-1]*dt;\n\
             x = x[i-1] + dt;\n\
             y = y[i-1] + u[i-1]*dt;\n",
        )
        .unwrap();
        assert_eq!(k.assigns.len(), 3);
        assert_eq!(k.outputs(), vec!["u", "x", "y"]);
        assert_eq!(k.inputs(), vec!["dt".to_string()]);
    }

    #[test]
    fn precedence_mul_over_add() {
        let k = parse("y = a + b * c;").unwrap();
        let Expr::Bin {
            op: BinOp::Add,
            rhs,
            ..
        } = &k.assigns[0].value
        else {
            panic!("expected + at the root");
        };
        assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parentheses_override() {
        let k = parse("y = (a + b) * c;").unwrap();
        assert!(matches!(
            k.assigns[0].value,
            Expr::Bin { op: BinOp::Mul, .. }
        ));
    }

    #[test]
    fn unary_minus() {
        let k = parse("y = -x + 1;").unwrap();
        let Expr::Bin { lhs, .. } = &k.assigns[0].value else {
            panic!()
        };
        assert!(matches!(**lhs, Expr::Neg(_)));
    }

    #[test]
    fn subscript_errors() {
        assert!(parse("y = x[j-1];").unwrap_err().message.contains("[i-K]"));
        assert!(parse("y = x[i-0];")
            .unwrap_err()
            .message
            .contains("delay 0"));
        assert!(parse("y = x[i+1];")
            .unwrap_err()
            .message
            .contains("'-' in subscript"));
        assert!(parse("y = x[i-1;").unwrap_err().message.contains("']'"));
    }

    #[test]
    fn missing_semicolon_reported() {
        let err = parse("y = x\nz = w;").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("';'"));
    }

    #[test]
    fn empty_source_is_empty_kernel() {
        let k = parse("  \n# nothing\n").unwrap();
        assert!(k.assigns.is_empty());
    }

    #[test]
    fn dangling_expression_reported() {
        let err = parse("y = ;").unwrap_err();
        assert!(err.message.contains("expected an operand"));
    }
}

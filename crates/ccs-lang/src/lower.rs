//! Lowering: AST -> CSDFG (dependence analysis + operator mapping).
//!
//! * every binary operator becomes a task (`+`/`-` with the additive
//!   latency, `*`/`/` with the multiplicative latency);
//! * numeric constants and unary minus fold into their consuming
//!   operator (they are coefficients, not computations);
//! * a bare reference `v` creates a zero-delay edge from the assignment
//!   that computed `v` *earlier in the same iteration* (forward bare
//!   references are rejected — write `v[i-1]`);
//! * `v[i-k]` creates an edge with `k` delays (loop-carried) and may
//!   reference any assignment, including later ones and the target
//!   itself;
//! * names never assigned become input tasks (one per name);
//! * the root operator of each assignment is named after its target;
//!   internal operators are named `target.1`, `target.2`, ...

use crate::ast::{Expr, Kernel};
use crate::token::LangError;
use ccs_model::{Csdfg, NodeId};
use std::collections::BTreeMap;

/// Operator latencies and edge volumes used during lowering.
#[derive(Clone, Copy, Debug)]
pub struct LowerConfig {
    /// Latency of `+` and `-`.
    pub add_time: u32,
    /// Latency of `*` and `/`.
    pub mul_time: u32,
    /// Latency of input-read tasks.
    pub input_time: u32,
    /// Data volume of every produced value.
    pub volume: u32,
}

impl Default for LowerConfig {
    fn default() -> Self {
        LowerConfig {
            add_time: 1,
            mul_time: 2,
            input_time: 1,
            volume: 1,
        }
    }
}

/// Result of lowering a kernel.
#[derive(Clone, Debug)]
pub struct Lowered {
    /// The communication-sensitive data-flow graph.
    pub graph: Csdfg,
    /// Defining task of each kernel variable (assignment targets and
    /// inputs).
    pub vars: BTreeMap<String, NodeId>,
}

/// A value an expression lowers to: a (possibly delayed) task output,
/// or a constant that folds into its consumer.
enum Value {
    Node { id: NodeId, delay: u32 },
    Constant,
}

struct Lowerer {
    g: Csdfg,
    config: LowerConfig,
    /// Targets already lowered (bare references resolve against this).
    lowered: BTreeMap<String, NodeId>,
    /// Root task of every assignment (delayed references resolve
    /// against this, irrespective of order).
    roots: BTreeMap<String, NodeId>,
    /// Input tasks created so far.
    inputs: BTreeMap<String, NodeId>,
    op_counter: usize,
}

impl Lowerer {
    fn input_node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.inputs.get(name) {
            return id;
        }
        let id = self
            .g
            .add_task(name.to_owned(), self.config.input_time)
            .expect("input names are distinct from targets and internal names");
        self.inputs.insert(name.to_owned(), id);
        id
    }

    fn op_node(&mut self, target: &str, multiplicative: bool) -> NodeId {
        self.op_counter += 1;
        let time = if multiplicative {
            self.config.mul_time
        } else {
            self.config.add_time
        };
        self.g
            .add_task(format!("{target}.{}", self.op_counter), time)
            .expect("fresh internal names are unique")
    }

    /// Lowers `e`.  When `root_for` is `Some(root)`, a top-level binary
    /// operator wires its operands directly into `root` instead of
    /// creating a fresh task (the pre-created root *is* that operator).
    fn lower_expr(
        &mut self,
        e: &Expr,
        target: &str,
        root_for: Option<NodeId>,
    ) -> Result<Value, LangError> {
        match e {
            Expr::Const(_) => Ok(Value::Constant),
            Expr::Neg(inner) => self.lower_expr(inner, target, root_for),
            Expr::Var { name, line, col } => {
                if let Some(&id) = self.lowered.get(name) {
                    Ok(Value::Node { id, delay: 0 })
                } else if self.roots.contains_key(name) {
                    Err(LangError::new(
                        *line,
                        *col,
                        format!(
                            "use of {name:?} before its assignment in this iteration; \
                             write {name}[i-1] for the previous iteration's value"
                        ),
                    ))
                } else {
                    Ok(Value::Node {
                        id: self.input_node(name),
                        delay: 0,
                    })
                }
            }
            Expr::Delayed { name, delay, .. } => {
                let id = match self.roots.get(name) {
                    Some(&id) => id,
                    None => self.input_node(name),
                };
                Ok(Value::Node { id, delay: *delay })
            }
            Expr::Bin { op, lhs, rhs } => {
                let l = self.lower_expr(lhs, target, None)?;
                let r = self.lower_expr(rhs, target, None)?;
                let id = match root_for {
                    Some(root) => root,
                    None => self.op_node(target, op.is_multiplicative()),
                };
                for operand in [l, r] {
                    if let Value::Node { id: src, delay } = operand {
                        self.g
                            .add_dep(src, id, delay, self.config.volume)
                            .expect("volume >= 1");
                    }
                }
                Ok(Value::Node { id, delay: 0 })
            }
        }
    }
}

/// Root task latency: if the top of the expression is an operator the
/// root *is* that operator; otherwise it is a copy/move task with the
/// additive latency.
fn root_time(e: &Expr, config: &LowerConfig) -> u32 {
    match e {
        Expr::Bin { op, .. } => {
            if op.is_multiplicative() {
                config.mul_time
            } else {
                config.add_time
            }
        }
        Expr::Neg(inner) => root_time(inner, config),
        _ => config.add_time,
    }
}

/// `true` when the expression's outermost non-Neg layer is a binary
/// operator (so the pre-created root absorbs it).
fn root_is_operator(e: &Expr) -> bool {
    match e {
        Expr::Bin { .. } => true,
        Expr::Neg(inner) => root_is_operator(inner),
        _ => false,
    }
}

/// Lowers a parsed kernel into a CSDFG.
pub fn lower(kernel: &Kernel, config: LowerConfig) -> Result<Lowered, LangError> {
    // Single-assignment check.
    let mut seen = BTreeMap::new();
    for a in &kernel.assigns {
        if seen.insert(a.target.clone(), a.line).is_some() {
            return Err(LangError::new(
                a.line,
                1,
                format!(
                    "variable {:?} is assigned twice (kernels are single-assignment)",
                    a.target
                ),
            ));
        }
    }

    let mut lw = Lowerer {
        g: Csdfg::new(),
        config,
        lowered: BTreeMap::new(),
        roots: BTreeMap::new(),
        inputs: BTreeMap::new(),
        op_counter: 0,
    };

    // Pre-create one root task per assignment so that *delayed*
    // references resolve regardless of assignment order.
    for a in &kernel.assigns {
        let id =
            lw.g.add_task(a.target.clone(), root_time(&a.value, &config))
                .map_err(|e| LangError::new(a.line, 1, format!("{e}")))?;
        lw.roots.insert(a.target.clone(), id);
    }

    for a in &kernel.assigns {
        let root = lw.roots[&a.target];
        if root_is_operator(&a.value) {
            lw.lower_expr(&a.value, &a.target, Some(root))?;
        } else {
            // Bare reference / constant: the root is a copy task fed by
            // the value (or a free-standing constant generator).
            if let Value::Node { id, delay } = lw.lower_expr(&a.value, &a.target, None)? {
                lw.g.add_dep(id, root, delay, lw.config.volume)
                    .expect("volume >= 1");
            }
        }
        lw.lowered.insert(a.target.clone(), root);
    }

    lw.g.check_legal()
        .map_err(|e| LangError::new(0, 0, format!("kernel lowers to an illegal CSDFG: {e}")))?;

    let mut vars = lw.roots;
    vars.extend(lw.inputs);
    Ok(Lowered { graph: lw.g, vars })
}

/// Convenience: parse + lower in one call.
pub fn compile(source: &str, config: LowerConfig) -> Result<Lowered, LangError> {
    let kernel = crate::parser::parse(source)?;
    lower(&kernel, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_default(src: &str) -> Lowered {
        compile(src, LowerConfig::default()).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn single_accumulator() {
        // y = y[i-1] + x: input x, root add, loop-carried self edge.
        let l = compile_default("y = y[i-1] + x;");
        let g = &l.graph;
        assert_eq!(g.task_count(), 2); // y (the add) and input x
        let y = l.vars["y"];
        let x = l.vars["x"];
        assert_eq!(g.time(y), 1);
        let self_edge = g.graph().find_edge(y, y).unwrap();
        assert_eq!(g.delay(self_edge), 1);
        let in_edge = g.graph().find_edge(x, y).unwrap();
        assert_eq!(g.delay(in_edge), 0);
        assert!(g.check_legal().is_ok());
    }

    #[test]
    fn constants_fold_away() {
        let l = compile_default("y = 0.5 * y[i-1] + 2;");
        // Tasks: the internal mul + y (the root add).
        assert_eq!(l.graph.task_count(), 2);
        let mul = l.graph.task_by_name("y.1").unwrap();
        assert_eq!(l.graph.time(mul), 2);
    }

    #[test]
    fn same_iteration_chains_in_order() {
        let l = compile_default("a = x; b = a + 1; c = b * b;");
        let g = &l.graph;
        let (a, b, c) = (l.vars["a"], l.vars["b"], l.vars["c"]);
        assert_eq!(g.delay(g.graph().find_edge(a, b).unwrap()), 0);
        // b feeds c twice (two operands).
        assert_eq!(g.graph().out_edges(b).count(), 2);
        assert_eq!(g.time(c), 2);
    }

    #[test]
    fn forward_bare_reference_rejected() {
        let err = compile("a = b; b = 1;", LowerConfig::default()).unwrap_err();
        assert!(err.message.contains("before its assignment"), "{err}");
    }

    #[test]
    fn forward_delayed_reference_allowed() {
        // a reads b's previous-iteration value although b is assigned
        // later in the kernel — a classic cross-variable recurrence.
        let l = compile_default("a = b[i-1] + 1; b = a * 2;");
        let g = &l.graph;
        let (a, b) = (l.vars["a"], l.vars["b"]);
        assert_eq!(g.delay(g.graph().find_edge(b, a).unwrap()), 1);
        assert_eq!(g.delay(g.graph().find_edge(a, b).unwrap()), 0);
        assert!(g.check_legal().is_ok());
    }

    #[test]
    fn double_assignment_rejected() {
        let err = compile("a = 1; a = 2;", LowerConfig::default()).unwrap_err();
        assert!(err.message.contains("assigned twice"));
    }

    #[test]
    fn zero_delay_recurrence_rejected_as_illegal() {
        // a and b depend on each other in the same iteration through
        // delayed... no: craft a direct same-iteration cycle via bare
        // refs is already impossible (forward bare refs rejected), so
        // the only illegal case is a degenerate self copy: a = a; which
        // is a forward bare self reference.
        let err = compile("a = a;", LowerConfig::default()).unwrap_err();
        assert!(err.message.contains("before its assignment"));
    }

    #[test]
    fn diffeq_kernel_compiles_to_a_sensible_graph() {
        let l = compile_default(
            "u = u[i-1] - 3*x[i-1]*u[i-1]*dt - 3*y[i-1]*dt;\n\
             x = x[i-1] + dt;\n\
             y = y[i-1] + u[i-1]*dt;\n",
        );
        let g = &l.graph;
        assert!(g.check_legal().is_ok());
        assert!(l.vars.contains_key("dt"));
        let muls = g.tasks().filter(|&v| g.time(v) == 2).count();
        assert!(muls >= 5, "found {muls} multipliers");
        assert!(ccs_retiming::iteration_bound(g).is_some());
    }

    #[test]
    fn compiled_kernels_schedule_end_to_end() {
        use ccs_core::{cyclo_compact, CompactConfig};
        use ccs_topology::Machine;
        let l = compile_default(
            "s = s[i-1] + x*k1;\n\
             y = s * k2;\n",
        );
        let m = Machine::mesh(2, 2);
        let r = cyclo_compact(&l.graph, &m, CompactConfig::default()).unwrap();
        assert!(ccs_schedule::validate(&r.graph, &m, &r.schedule).is_ok());
    }

    #[test]
    fn constant_only_assignment() {
        let l = compile_default("k = 3;");
        assert_eq!(l.graph.task_count(), 1);
        let k = l.vars["k"];
        assert_eq!(l.graph.in_deps(k).count(), 0);
    }

    #[test]
    fn custom_latencies() {
        let cfg = LowerConfig {
            add_time: 3,
            mul_time: 7,
            input_time: 2,
            volume: 4,
        };
        let l = compile("y = a * b + c;", cfg).unwrap();
        let g = &l.graph;
        assert_eq!(g.time(l.vars["y"]), 3); // the root add
        assert_eq!(g.time(g.task_by_name("y.1").unwrap()), 7); // the mul
        assert_eq!(g.time(l.vars["a"]), 2); // input read
        for e in g.deps() {
            assert_eq!(g.volume(e), 4);
        }
    }

    #[test]
    fn delayed_self_reference_on_copy_root() {
        // y = y[i-1]; is a pure register: copy task with a self loop.
        let l = compile_default("y = y[i-1];");
        let g = &l.graph;
        let y = l.vars["y"];
        assert_eq!(g.task_count(), 1);
        let e = g.graph().find_edge(y, y).unwrap();
        assert_eq!(g.delay(e), 1);
        assert!(g.check_legal().is_ok());
    }
}

//! # ccs-lang
//!
//! A tiny loop-kernel language and its compiler to communication-
//! sensitive data-flow graphs — the frontend substrate for the
//! cyclo-compaction reproduction.  The ICPP'95 paper's motivation is
//! that "applications requiring parallel systems are usually iterative
//! or recursive \[and\] can be represented by cyclic data flow graphs";
//! this crate performs exactly that representation step:
//!
//! ```text
//! u = u[i-1] - 3*x[i-1]*u[i-1]*dt - 3*y[i-1]*dt;
//! x = x[i-1] + dt;
//! y = y[i-1] + u[i-1]*dt;
//! ```
//!
//! compiles into a legal CSDFG: operators become tasks (`+`/`-` vs
//! `*`/`/` latencies), bare references become zero-delay edges,
//! `v[i-k]` subscripts become loop-carried edges with `k` delays, and
//! free names become input tasks.
//!
//! ```
//! use ccs_lang::{compile, LowerConfig};
//!
//! let lowered = compile("y = y[i-1]*k + x;", LowerConfig::default()).unwrap();
//! assert_eq!(lowered.graph.task_count(), 4); // mul, add(y), inputs k and x
//! assert!(lowered.graph.check_legal().is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod lower;
pub mod parser;
pub mod token;

pub use ast::{Assign, BinOp, Expr, Kernel};
pub use lower::{compile, lower, LowerConfig, Lowered};
pub use parser::parse;
pub use token::{lex, LangError};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy: a random well-formed kernel. Assignment k may make
    /// bare references to targets `0..k`, delayed references to any
    /// target, and references to a small input pool.
    fn arb_kernel() -> impl Strategy<Value = String> {
        (1usize..7).prop_flat_map(|n| {
            let stmt = move |k: usize| {
                // each operand: (choice, index, delay)
                proptest::collection::vec((0u8..4, 0usize..8, 1u32..4), 1..4).prop_map(move |ops| {
                    let mut rhs = String::new();
                    for (i, (kind, ix, d)) in ops.iter().enumerate() {
                        if i > 0 {
                            rhs.push_str(if i % 2 == 0 { " + " } else { " * " });
                        }
                        match kind {
                            0 if k > 0 => rhs.push_str(&format!("t{}", ix % k)),
                            1 => rhs.push_str(&format!("t{}[i-{d}]", ix % 8)),
                            2 => rhs.push_str(&format!("in{}", ix % 3)),
                            _ => rhs.push_str("2.5"),
                        }
                    }
                    format!("t{k} = {rhs};")
                })
            };
            (0..n)
                .map(stmt)
                .collect::<Vec<_>>()
                .prop_map(|stmts| stmts.join("\n"))
        })
    }

    proptest! {
        #[test]
        fn generated_kernels_compile_to_legal_graphs(src in arb_kernel()) {
            // Delayed refs may target t0..t7 even when fewer exist;
            // those resolve as inputs, which is fine.
            let lowered = compile(&src, LowerConfig::default())
                .unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"));
            prop_assert!(lowered.graph.check_legal().is_ok());
            prop_assert!(lowered.graph.task_count() >= 1);
        }

        #[test]
        fn compiled_graphs_round_trip_the_text_format(src in arb_kernel()) {
            let lowered = compile(&src, LowerConfig::default()).unwrap();
            let text = ccs_model::parser::write(&lowered.graph);
            let back = ccs_model::parser::parse(&text).unwrap();
            prop_assert_eq!(back.task_count(), lowered.graph.task_count());
            prop_assert_eq!(back.dep_count(), lowered.graph.dep_count());
        }

        #[test]
        fn compiled_kernels_always_schedule(src in arb_kernel()) {
            use ccs_core::{cyclo_compact, CompactConfig};
            use ccs_topology::Machine;
            let lowered = compile(&src, LowerConfig::default()).unwrap();
            let m = Machine::mesh(2, 2);
            let cfg = CompactConfig { passes: 8, ..Default::default() };
            let r = cyclo_compact(&lowered.graph, &m, cfg).unwrap();
            prop_assert!(ccs_schedule::validate(&r.graph, &m, &r.schedule).is_ok());
        }
    }
}

#[cfg(test)]
mod end_to_end {
    use super::*;
    use ccs_core::{cyclo_compact, CompactConfig};
    use ccs_topology::Machine;

    /// The whole story in one test: loop source -> CSDFG -> compacted
    /// schedule -> validated.
    #[test]
    fn biquad_source_to_schedule() {
        let src = "w = x - a1*w[i-1] - a2*w[i-2];\n\
                   y = w*b0 + w[i-1]*b1 + w[i-2]*b2;\n";
        let lowered = compile(src, LowerConfig::default()).unwrap();
        let g = &lowered.graph;
        assert!(g.check_legal().is_ok());
        let bound = ccs_retiming::iteration_bound(g).expect("recurrence through w");
        for machine in [Machine::mesh(2, 2), Machine::complete(4)] {
            let r = cyclo_compact(g, &machine, CompactConfig::default()).unwrap();
            assert!(ccs_schedule::validate(&r.graph, &machine, &r.schedule).is_ok());
            assert!(u64::from(r.best_length) >= bound.ceil());
        }
    }

    #[test]
    fn error_positions_surface() {
        let err = compile("y = x[i-1]\nz = 2;", LowerConfig::default()).unwrap_err();
        assert_eq!(err.line, 2);
    }
}

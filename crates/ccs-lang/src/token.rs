//! Lexer for the loop-kernel language.

use std::fmt;

/// A lexical token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column of the first character.
    pub col: usize,
}

/// Token kinds of the kernel language.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier (variable name).
    Ident(String),
    /// Integer literal.
    Int(u32),
    /// Floating literal (kept as text; constants fold into operators).
    Float(String),
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier {s:?}"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "number {v}"),
            TokenKind::Assign => write!(f, "'='"),
            TokenKind::Plus => write!(f, "'+'"),
            TokenKind::Minus => write!(f, "'-'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Slash => write!(f, "'/'"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::LBracket => write!(f, "'['"),
            TokenKind::RBracket => write!(f, "']'"),
            TokenKind::Semi => write!(f, "';'"),
        }
    }
}

/// Lexing / parsing / lowering error with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct LangError {
    /// 1-based line (0 when position is unknown).
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human message.
    pub message: String,
}

impl LangError {
    pub(crate) fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        LangError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LangError {}

/// Tokenizes `source`.  `#` and `//` start line comments.
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    let mut out = Vec::new();
    for (lix, raw) in source.lines().enumerate() {
        let line = lix + 1;
        let code = match (raw.find('#'), raw.find("//")) {
            (Some(a), Some(b)) => &raw[..a.min(b)],
            (Some(a), None) => &raw[..a],
            (None, Some(b)) => &raw[..b],
            (None, None) => raw,
        };
        let bytes: Vec<char> = code.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            let col = i + 1;
            match c {
                ' ' | '\t' | '\r' => {
                    i += 1;
                }
                '=' => {
                    out.push(Token {
                        kind: TokenKind::Assign,
                        line,
                        col,
                    });
                    i += 1;
                }
                '+' => {
                    out.push(Token {
                        kind: TokenKind::Plus,
                        line,
                        col,
                    });
                    i += 1;
                }
                '-' => {
                    out.push(Token {
                        kind: TokenKind::Minus,
                        line,
                        col,
                    });
                    i += 1;
                }
                '*' => {
                    out.push(Token {
                        kind: TokenKind::Star,
                        line,
                        col,
                    });
                    i += 1;
                }
                '/' => {
                    out.push(Token {
                        kind: TokenKind::Slash,
                        line,
                        col,
                    });
                    i += 1;
                }
                '(' => {
                    out.push(Token {
                        kind: TokenKind::LParen,
                        line,
                        col,
                    });
                    i += 1;
                }
                ')' => {
                    out.push(Token {
                        kind: TokenKind::RParen,
                        line,
                        col,
                    });
                    i += 1;
                }
                '[' => {
                    out.push(Token {
                        kind: TokenKind::LBracket,
                        line,
                        col,
                    });
                    i += 1;
                }
                ']' => {
                    out.push(Token {
                        kind: TokenKind::RBracket,
                        line,
                        col,
                    });
                    i += 1;
                }
                ';' => {
                    out.push(Token {
                        kind: TokenKind::Semi,
                        line,
                        col,
                    });
                    i += 1;
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    out.push(Token {
                        kind: TokenKind::Ident(text),
                        line,
                        col,
                    });
                }
                c if c.is_ascii_digit() => {
                    let start = i;
                    let mut is_float = false;
                    while i < bytes.len()
                        && (bytes[i].is_ascii_digit() || (bytes[i] == '.' && !is_float))
                    {
                        if bytes[i] == '.' {
                            is_float = true;
                        }
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    let kind = if is_float {
                        TokenKind::Float(text)
                    } else {
                        TokenKind::Int(text.parse().map_err(|_| {
                            LangError::new(line, col, format!("integer {text:?} out of range"))
                        })?)
                    };
                    out.push(Token { kind, line, col });
                }
                other => {
                    return Err(LangError::new(
                        line,
                        col,
                        format!("unexpected character {other:?}"),
                    ))
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_an_assignment() {
        let toks = lex("y = x[i-1] + 0.5;").unwrap();
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        assert_eq!(kinds.len(), 11);
        assert_eq!(*kinds[0], TokenKind::Ident("y".into()));
        assert_eq!(*kinds[1], TokenKind::Assign);
        assert_eq!(*kinds[3], TokenKind::LBracket);
        assert_eq!(*kinds[5], TokenKind::Minus);
        assert_eq!(*kinds[6], TokenKind::Int(1));
        assert_eq!(*kinds[9], TokenKind::Float("0.5".into()));
        assert_eq!(*kinds[10], TokenKind::Semi);
    }

    #[test]
    fn comments_are_stripped() {
        let toks = lex("a = b; # trailing\n// whole line\nc = d;\n").unwrap();
        let idents: Vec<String> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("a = 1;\n b = 2;").unwrap();
        let b = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("b".into()))
            .unwrap();
        assert_eq!((b.line, b.col), (2, 2));
    }

    #[test]
    fn rejects_garbage() {
        let err = lex("a = $;").unwrap_err();
        assert_eq!((err.line, err.col), (1, 5));
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn underscored_identifiers() {
        let toks = lex("_tmp2 = x_1;").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("_tmp2".into()));
        assert_eq!(toks[2].kind, TokenKind::Ident("x_1".into()));
    }
}

//! Abstract syntax of the loop-kernel language.
//!
//! A *kernel* is an ordered list of assignments executed once per loop
//! iteration `i`:
//!
//! ```text
//! u = u[i-1] - 3*x[i-1]*u[i-1]*dt - 3*y[i-1]*dt;
//! x = x[i-1] + dt;
//! y = y[i-1] + u[i-1]*dt;
//! ```
//!
//! * `v` (bare) on the right-hand side refers to the value computed by
//!   an *earlier* assignment of the same iteration;
//! * `v[i-k]` refers to the value computed `k` iterations ago
//!   (a loop-carried dependency of delay `k`);
//! * names never assigned are external inputs;
//! * numeric literals fold into their consuming operator.

/// Binary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// `true` for the multiplicative operators (which usually carry the
    /// longer latency).
    pub fn is_multiplicative(self) -> bool {
        matches!(self, BinOp::Mul | BinOp::Div)
    }
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Reference to a variable computed in the current iteration.
    Var {
        /// Variable name.
        name: String,
        /// Source line of the reference (for diagnostics).
        line: usize,
        /// Source column.
        col: usize,
    },
    /// Reference `name[i-delay]` to a previous iteration's value.
    Delayed {
        /// Variable name.
        name: String,
        /// Number of iterations back (`>= 1`).
        delay: u32,
        /// Source line.
        line: usize,
        /// Source column.
        col: usize,
    },
    /// Numeric literal (constants fold into operators during lowering).
    Const(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// One assignment statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Assign {
    /// Target variable.
    pub target: String,
    /// Right-hand side.
    pub value: Expr,
    /// Source line of the target (for diagnostics).
    pub line: usize,
}

/// A parsed kernel: assignments in source order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Kernel {
    /// Assignments in execution order.
    pub assigns: Vec<Assign>,
}

impl Kernel {
    /// Names assigned by the kernel, in order.
    pub fn outputs(&self) -> Vec<&str> {
        self.assigns.iter().map(|a| a.target.as_str()).collect()
    }

    /// Names referenced but never assigned — the kernel's external
    /// inputs, in first-reference order.
    pub fn inputs(&self) -> Vec<String> {
        let defined: std::collections::BTreeSet<&str> =
            self.assigns.iter().map(|a| a.target.as_str()).collect();
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for a in &self.assigns {
            collect_refs(&a.value, &mut |name| {
                if !defined.contains(name) && seen.insert(name.to_owned()) {
                    out.push(name.to_owned());
                }
            });
        }
        out
    }
}

fn collect_refs(e: &Expr, f: &mut impl FnMut(&str)) {
    match e {
        Expr::Var { name, .. } | Expr::Delayed { name, .. } => f(name),
        Expr::Const(_) => {}
        Expr::Neg(inner) => collect_refs(inner, f),
        Expr::Bin { lhs, rhs, .. } => {
            collect_refs(lhs, f);
            collect_refs(rhs, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Expr {
        Expr::Var {
            name: name.into(),
            line: 1,
            col: 1,
        }
    }

    #[test]
    fn inputs_exclude_assigned_names() {
        let k = Kernel {
            assigns: vec![
                Assign {
                    target: "y".into(),
                    value: var("x"),
                    line: 1,
                },
                Assign {
                    target: "x".into(),
                    value: Expr::Bin {
                        op: BinOp::Add,
                        lhs: Box::new(var("u")),
                        rhs: Box::new(Expr::Delayed {
                            name: "y".into(),
                            delay: 1,
                            line: 2,
                            col: 5,
                        }),
                    },
                    line: 2,
                },
            ],
        };
        assert_eq!(k.outputs(), vec!["y", "x"]);
        assert_eq!(k.inputs(), vec!["u".to_string()]);
    }

    #[test]
    fn multiplicative_classification() {
        assert!(BinOp::Mul.is_multiplicative());
        assert!(BinOp::Div.is_multiplicative());
        assert!(!BinOp::Add.is_multiplicative());
        assert!(!BinOp::Sub.is_multiplicative());
    }

    #[test]
    fn inputs_found_inside_negation_and_consts_skipped() {
        let k = Kernel {
            assigns: vec![Assign {
                target: "y".into(),
                value: Expr::Neg(Box::new(Expr::Bin {
                    op: BinOp::Mul,
                    lhs: Box::new(Expr::Const("2.0".into())),
                    rhs: Box::new(var("w")),
                })),
                line: 1,
            }],
        };
        assert_eq!(k.inputs(), vec!["w".to_string()]);
    }
}

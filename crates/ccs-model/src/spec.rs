//! Flat, serde-friendly representation of a CSDFG.
//!
//! [`CsdfgSpec`] is a plain `{nodes, edges}` value that round-trips
//! through JSON (or any serde format) and converts losslessly to/from
//! [`Csdfg`]; the experiment harness uses it to persist workloads and
//! results.

use crate::csdfg::{Csdfg, ModelError};
use serde::{Deserialize, Serialize};

/// One task in a [`CsdfgSpec`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Task name.
    pub name: String,
    /// Computation time `t(v)`.
    #[serde(default = "one")]
    pub time: u32,
}

/// One dependency in a [`CsdfgSpec`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeSpec {
    /// Source task name.
    pub src: String,
    /// Target task name.
    pub dst: String,
    /// Delay count `d(e)`.
    #[serde(default)]
    pub delay: u32,
    /// Communication volume `c(e)`.
    #[serde(default = "one")]
    pub volume: u32,
}

fn one() -> u32 {
    1
}

/// Serializable CSDFG.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CsdfgSpec {
    /// Tasks, in id order.
    pub nodes: Vec<NodeSpec>,
    /// Dependencies, in id order.
    pub edges: Vec<EdgeSpec>,
}

impl CsdfgSpec {
    /// Builds the runtime graph, validating names/times/volumes.
    pub fn build(&self) -> Result<Csdfg, ModelError> {
        let mut g = Csdfg::new();
        for n in &self.nodes {
            g.add_task(n.name.clone(), n.time)?;
        }
        for e in &self.edges {
            let s = g
                .task_by_name(&e.src)
                .ok_or_else(|| ModelError::UnknownTask(e.src.clone()))?;
            let d = g
                .task_by_name(&e.dst)
                .ok_or_else(|| ModelError::UnknownTask(e.dst.clone()))?;
            g.add_dep(s, d, e.delay, e.volume)?;
        }
        Ok(g)
    }
}

impl From<&Csdfg> for CsdfgSpec {
    fn from(g: &Csdfg) -> Self {
        let nodes = g
            .tasks()
            .map(|v| NodeSpec {
                name: g.name(v).to_owned(),
                time: g.time(v),
            })
            .collect();
        let edges = g
            .deps()
            .map(|e| {
                let (u, v) = g.endpoints(e);
                EdgeSpec {
                    src: g.name(u).to_owned(),
                    dst: g.name(v).to_owned(),
                    delay: g.delay(e),
                    volume: g.volume(e),
                }
            })
            .collect();
        CsdfgSpec { nodes, edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> CsdfgSpec {
        CsdfgSpec {
            nodes: vec![
                NodeSpec {
                    name: "A".into(),
                    time: 1,
                },
                NodeSpec {
                    name: "B".into(),
                    time: 2,
                },
            ],
            edges: vec![
                EdgeSpec {
                    src: "A".into(),
                    dst: "B".into(),
                    delay: 0,
                    volume: 1,
                },
                EdgeSpec {
                    src: "B".into(),
                    dst: "A".into(),
                    delay: 1,
                    volume: 2,
                },
            ],
        }
    }

    #[test]
    fn builds_runtime_graph() {
        let g = demo().build().unwrap();
        assert_eq!(g.task_count(), 2);
        assert_eq!(g.dep_count(), 2);
        assert!(g.check_legal().is_ok());
    }

    #[test]
    fn unknown_edge_endpoint_rejected() {
        let mut s = demo();
        s.edges.push(EdgeSpec {
            src: "Z".into(),
            dst: "A".into(),
            delay: 0,
            volume: 1,
        });
        assert!(matches!(s.build(), Err(ModelError::UnknownTask(_))));
    }

    #[test]
    fn spec_round_trip() {
        let spec = demo();
        let g = spec.build().unwrap();
        let spec2 = CsdfgSpec::from(&g);
        assert_eq!(spec, spec2);
    }

    #[test]
    fn json_round_trip() {
        let spec = demo();
        let json = serde_json::to_string(&spec).unwrap();
        let back: CsdfgSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn json_defaults() {
        let back: CsdfgSpec = serde_json::from_str(
            r#"{"nodes":[{"name":"A"}],"edges":[{"src":"A","dst":"A","delay":1}]}"#,
        )
        .unwrap();
        assert_eq!(back.nodes[0].time, 1);
        assert_eq!(back.edges[0].volume, 1);
        let g = back.build().unwrap();
        assert!(g.check_legal().is_ok());
    }
}

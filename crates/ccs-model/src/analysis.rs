//! Structural statistics of a CSDFG, used by the experiment harness
//! and handy when characterizing new workloads.

use crate::csdfg::Csdfg;
use ccs_graph::algo::scc::tarjan_scc;
use ccs_graph::NodeId;

/// Summary statistics of a CSDFG.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of dependency edges.
    pub deps: usize,
    /// Edges with `d(e) == 0` (intra-iteration).
    pub zero_delay_deps: usize,
    /// Total delay tokens in the graph.
    pub total_delay: u64,
    /// Total computation time.
    pub total_time: u64,
    /// Maximum task time.
    pub max_time: u32,
    /// Maximum in-degree over tasks.
    pub max_in_degree: usize,
    /// Maximum out-degree over tasks.
    pub max_out_degree: usize,
    /// Total data volume over all edges.
    pub total_volume: u64,
    /// Number of non-trivial strongly connected components (size > 1
    /// or self-loop) — the graph's independent recurrences.
    pub recurrences: usize,
    /// Size of the largest strongly connected component.
    pub largest_scc: usize,
}

/// Computes [`GraphStats`] for `g`.
pub fn stats(g: &Csdfg) -> GraphStats {
    let sccs = tarjan_scc(g.graph());
    let non_trivial =
        |c: &Vec<NodeId>| c.len() > 1 || c.first().is_some_and(|&v| g.succs(v).any(|s| s == v));
    GraphStats {
        tasks: g.task_count(),
        deps: g.dep_count(),
        zero_delay_deps: g.deps().filter(|&e| g.delay(e) == 0).count(),
        total_delay: g.total_delay(),
        total_time: g.total_time(),
        max_time: g.tasks().map(|v| g.time(v)).max().unwrap_or(0),
        max_in_degree: g.tasks().map(|v| g.in_deps(v).count()).max().unwrap_or(0),
        max_out_degree: g.tasks().map(|v| g.out_deps(v).count()).max().unwrap_or(0),
        total_volume: g.deps().map(|e| u64::from(g.volume(e))).sum(),
        recurrences: sccs.iter().filter(|c| non_trivial(c)).count(),
        largest_scc: sccs.iter().map(Vec::len).max().unwrap_or(0),
    }
}

/// A fluent builder for small graphs, mostly for examples and tests:
///
/// ```
/// use ccs_model::analysis::GraphBuilder;
///
/// let g = GraphBuilder::new()
///     .task("A", 1)
///     .task("B", 2)
///     .dep("A", "B", 0, 1)
///     .dep("B", "A", 1, 2)
///     .build()
///     .unwrap();
/// assert_eq!(g.task_count(), 2);
/// assert!(g.check_legal().is_ok());
/// ```
#[derive(Default)]
pub struct GraphBuilder {
    tasks: Vec<(String, u32)>,
    deps: Vec<(String, String, u32, u32)>,
}

impl GraphBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a task.
    pub fn task(mut self, name: impl Into<String>, time: u32) -> Self {
        self.tasks.push((name.into(), time));
        self
    }

    /// Declares a dependency by task names (tasks referenced before
    /// declaration are created with `t = 1`).
    pub fn dep(
        mut self,
        src: impl Into<String>,
        dst: impl Into<String>,
        delay: u32,
        volume: u32,
    ) -> Self {
        self.deps.push((src.into(), dst.into(), delay, volume));
        self
    }

    /// Builds the graph, validating legality.
    pub fn build(self) -> Result<Csdfg, crate::csdfg::ModelError> {
        let mut g = Csdfg::new();
        for (name, time) in self.tasks {
            g.add_task(name, time)?;
        }
        for (src, dst, delay, volume) in self.deps {
            let s = match g.task_by_name(&src) {
                Some(s) => s,
                None => g.add_task(src, 1)?,
            };
            let d = match g.task_by_name(&dst) {
                Some(d) => d,
                None => g.add_task(dst, 1)?,
            };
            g.add_dep(s, d, delay, volume)?;
        }
        g.check_legal()?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_a_two_recurrence_graph() {
        let g = GraphBuilder::new()
            .task("A", 1)
            .task("B", 2)
            .task("C", 3)
            .dep("A", "B", 0, 2)
            .dep("B", "A", 1, 1)
            .dep("C", "C", 2, 1)
            .dep("A", "C", 0, 1)
            .build()
            .unwrap();
        let s = stats(&g);
        assert_eq!(s.tasks, 3);
        assert_eq!(s.deps, 4);
        assert_eq!(s.zero_delay_deps, 2);
        assert_eq!(s.total_delay, 3);
        assert_eq!(s.total_time, 6);
        assert_eq!(s.max_time, 3);
        assert_eq!(s.total_volume, 5);
        assert_eq!(s.recurrences, 2); // {A,B} and the C self-loop
        assert_eq!(s.largest_scc, 2);
        assert_eq!(s.max_out_degree, 2); // A
    }

    #[test]
    fn builder_rejects_illegal_graphs() {
        let r = GraphBuilder::new()
            .dep("A", "B", 0, 1)
            .dep("B", "A", 0, 1)
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn builder_auto_creates_tasks() {
        let g = GraphBuilder::new().dep("X", "Y", 1, 1).build().unwrap();
        assert_eq!(g.task_count(), 2);
        assert_eq!(g.time(g.task_by_name("X").unwrap()), 1);
    }

    #[test]
    fn empty_graph_stats() {
        let s = stats(&Csdfg::new());
        assert_eq!(s.tasks, 0);
        assert_eq!(s.recurrences, 0);
        assert_eq!(s.max_time, 0);
    }

    #[test]
    fn acyclic_graph_has_no_recurrences() {
        let g = GraphBuilder::new()
            .dep("A", "B", 0, 1)
            .dep("B", "C", 2, 1)
            .build()
            .unwrap();
        assert_eq!(stats(&g).recurrences, 0);
    }
}

//! Dependency-only timing analysis of the zero-delay DAG view:
//! ASAP / ALAP control steps, mobility, critical path.
//!
//! These quantities ignore communication and resources entirely; they
//! feed the *mobility* term `MB(v)` of the paper's priority function
//! (Definition 3.4) and provide lower bounds for sanity checks.

use crate::csdfg::Csdfg;
use ccs_graph::algo::paths::dag_longest_paths;
use ccs_graph::algo::topo::CycleError;
use ccs_graph::NodeId;

/// Result of [`analyze`]: all values are 1-based control steps, the
/// convention used throughout the paper's schedule tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Timing {
    asap: Vec<u32>,
    alap: Vec<u32>,
    /// Length of the (resource-unconstrained) critical path in control
    /// steps: the smallest schedule length any schedule of the
    /// zero-delay DAG can achieve.
    pub critical_path: u32,
}

impl Timing {
    /// Earliest control step at which `v` can begin.
    pub fn asap(&self, v: NodeId) -> u32 {
        self.asap[v.index()]
    }

    /// Latest control step at which `v` can begin without stretching the
    /// critical path.
    pub fn alap(&self, v: NodeId) -> u32 {
        self.alap[v.index()]
    }

    /// Mobility `MB(v) = ALAP(v) - ASAP(v)` (Definition 3.4, measured
    /// from the node's earliest position).
    pub fn mobility(&self, v: NodeId) -> u32 {
        self.alap[v.index()] - self.asap[v.index()]
    }

    /// Mobility relative to an arbitrary "current" control step, as used
    /// while list scheduling: `max(0, ALAP(v) - cs)`.
    pub fn mobility_at(&self, v: NodeId, cs: u32) -> u32 {
        self.alap[v.index()].saturating_sub(cs)
    }
}

/// Computes [`Timing`] for the zero-delay DAG view of `g`.
///
/// Fails with [`CycleError`] if `g` has a zero-delay cycle (illegal
/// CSDFG).
pub fn analyze(g: &Csdfg) -> Result<Timing, CycleError> {
    let graph = g.graph();
    // ASAP: longest path counting execution times, start step 1.
    // dist(v) = max(1, max over zero-delay edges u->v of dist(u)+t(u)).
    let asap_raw = dag_longest_paths(
        graph,
        |e| g.delay(e) == 0,
        |e| i64::from(g.time(graph.edge_source(e))),
        |_| 1,
    )?;
    let mut critical: i64 = 0;
    for v in g.tasks() {
        critical = critical.max(asap_raw[v.index()] + i64::from(g.time(v)) - 1);
    }
    // Tail length T(v) = t(v) + max over zero-delay out-edges T(w);
    // computed as longest path in the reversed orientation.
    // dag_longest_paths walks forward edges, so emulate reversal by
    // processing the reverse topological order manually.
    let order = g.zero_delay_topo()?;
    let bound = graph.node_bound();
    let mut tail = vec![0i64; bound];
    for &v in order.iter().rev() {
        let mut best = 0i64;
        for e in g.intra_iter_out_deps(v) {
            let w = graph.edge_target(e);
            best = best.max(tail[w.index()]);
        }
        tail[v.index()] = best + i64::from(g.time(v));
    }
    let asap = asap_raw
        .iter()
        .map(|&x| u32::try_from(x.max(1)).unwrap())
        .collect();
    let alap = g
        .tasks()
        .map(|v| (v.index(), critical - tail[v.index()] + 1))
        .fold(vec![0u32; bound], |mut acc, (i, x)| {
            acc[i] = u32::try_from(x.max(1)).unwrap();
            acc
        });
    Ok(Timing {
        asap,
        alap,
        critical_path: u32::try_from(critical.max(0)).unwrap(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1(b)/6(a) example.
    fn fig1() -> (Csdfg, Vec<NodeId>) {
        let mut g = Csdfg::new();
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| {
                let t = if *n == "B" || *n == "E" { 2 } else { 1 };
                g.add_task(*n, t).unwrap()
            })
            .collect();
        let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(a, c, 0, 1).unwrap();
        g.add_dep(a, e, 0, 1).unwrap();
        g.add_dep(b, d, 0, 1).unwrap();
        g.add_dep(b, e, 0, 2).unwrap();
        g.add_dep(c, e, 0, 1).unwrap();
        g.add_dep(d, a, 3, 3).unwrap();
        g.add_dep(d, f, 0, 2).unwrap();
        g.add_dep(e, f, 0, 1).unwrap();
        g.add_dep(f, e, 1, 1).unwrap();
        (g, ids)
    }

    #[test]
    fn fig1_asap_matches_hand_calculation() {
        let (g, n) = fig1();
        let t = analyze(&g).unwrap();
        // A starts at 1 (t=1); B,C,E can start at 2; D after B (t=2) at 4;
        // E also waits for B: max(2, 2+2)=4; F after D(4,t=1)->5 and E(4,t=2)->6.
        assert_eq!(t.asap(n[0]), 1); // A
        assert_eq!(t.asap(n[1]), 2); // B
        assert_eq!(t.asap(n[2]), 2); // C
        assert_eq!(t.asap(n[3]), 4); // D
        assert_eq!(t.asap(n[4]), 4); // E
        assert_eq!(t.asap(n[5]), 6); // F
                                     // Critical path: A(1) B(2-3) E(4-5) F(6) = 6 control steps.
        assert_eq!(t.critical_path, 6);
    }

    #[test]
    fn fig1_alap_and_mobility() {
        let (g, n) = fig1();
        let t = analyze(&g).unwrap();
        // F last: ALAP(F) = 6. E must end by 5 => ALAP(E)=4.
        assert_eq!(t.alap(n[5]), 6);
        assert_eq!(t.alap(n[4]), 4);
        // D -> F: D can start as late as 5.
        assert_eq!(t.alap(n[3]), 5);
        // B feeds D (needs start by 5 => B by 3) and E (start by 4 => B by 2).
        assert_eq!(t.alap(n[1]), 2);
        // C feeds E: C by 3.
        assert_eq!(t.alap(n[2]), 3);
        assert_eq!(t.alap(n[0]), 1);
        // Mobility: on the critical path it is zero.
        assert_eq!(t.mobility(n[0]), 0);
        assert_eq!(t.mobility(n[1]), 0);
        assert_eq!(t.mobility(n[2]), 1);
        assert_eq!(t.mobility(n[3]), 1);
        assert_eq!(t.mobility(n[4]), 0);
        assert_eq!(t.mobility(n[5]), 0);
    }

    #[test]
    fn mobility_at_clamps_to_zero() {
        let (g, n) = fig1();
        let t = analyze(&g).unwrap();
        assert_eq!(t.mobility_at(n[2], 1), 2);
        assert_eq!(t.mobility_at(n[2], 3), 0);
        assert_eq!(t.mobility_at(n[2], 9), 0);
    }

    #[test]
    fn asap_at_least_one_for_roots() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 3).unwrap();
        let t = analyze(&g).unwrap();
        assert_eq!(t.asap(a), 1);
        assert_eq!(t.alap(a), 1);
        assert_eq!(t.critical_path, 3);
    }

    #[test]
    fn delayed_edges_do_not_constrain_timing() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 1, 1).unwrap(); // loop-carried only
        let t = analyze(&g).unwrap();
        assert_eq!(t.asap(b), 1);
        assert_eq!(t.critical_path, 1);
    }

    #[test]
    fn zero_delay_cycle_fails() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 0, 1).unwrap();
        assert!(analyze(&g).is_err());
    }

    #[test]
    fn chain_critical_path_sums_times() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 2).unwrap();
        let b = g.add_task("B", 3).unwrap();
        let c = g.add_task("C", 4).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, c, 0, 1).unwrap();
        let t = analyze(&g).unwrap();
        assert_eq!(t.critical_path, 9);
        assert_eq!(t.asap(b), 3);
        assert_eq!(t.asap(c), 6);
        for v in [a, b, c] {
            assert_eq!(t.mobility(v), 0);
        }
    }
}

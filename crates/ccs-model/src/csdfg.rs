//! The communication-sensitive data-flow graph (CSDFG).

use ccs_graph::algo::topo::{topo_sort_filtered, CycleError};
use ccs_graph::{DiGraph, EdgeId, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Node payload of a CSDFG: a computational task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Task {
    /// Human-readable name (unique within a graph).
    pub name: String,
    /// Computation time `t(v)` in clock cycles, `>= 1`.
    pub time: u32,
}

/// Edge payload of a CSDFG: a data dependency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dep {
    /// Loop-carried delay count `d(e)` (0 = intra-iteration dependency).
    pub delay: u32,
    /// Data volume `c(e)` transmitted when producer and consumer run on
    /// different processors, `>= 1`.
    pub volume: u32,
}

/// Errors raised while building or mutating a CSDFG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A task with this name already exists.
    DuplicateTask(String),
    /// Computation times must be strictly positive.
    ZeroTime(String),
    /// Communication volumes must be strictly positive.
    ZeroVolume,
    /// The graph has a cycle whose total delay is zero (illegal DFG).
    ZeroDelayCycle(NodeId),
    /// An unknown task name was referenced.
    UnknownTask(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateTask(n) => write!(f, "duplicate task name {n:?}"),
            ModelError::ZeroTime(n) => write!(f, "task {n:?} has zero computation time"),
            ModelError::ZeroVolume => write!(f, "edge has zero data volume"),
            ModelError::ZeroDelayCycle(n) => {
                write!(f, "zero-delay cycle through node {n} (illegal DFG)")
            }
            ModelError::UnknownTask(n) => write!(f, "unknown task name {n:?}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// A communication-sensitive data-flow graph `G = (V, E, d, t, c)`
/// (paper, Definition in §2).
///
/// * nodes are [`Task`]s with computation times `t(v) >= 1`;
/// * edges are [`Dep`]s with delay counts `d(e) >= 0` and communication
///   volumes `c(e) >= 1`;
/// * a *legal* CSDFG has strictly positive total delay around every
///   directed cycle, equivalently: the sub-graph of zero-delay edges is
///   acyclic (see [`Csdfg::check_legal`]).
///
/// ```
/// use ccs_model::Csdfg;
///
/// let mut g = Csdfg::new();
/// let a = g.add_task("A", 1).unwrap();
/// let b = g.add_task("B", 2).unwrap();
/// g.add_dep(a, b, 0, 1).unwrap(); // same-iteration dependency
/// g.add_dep(b, a, 1, 2).unwrap(); // loop-carried, one delay
/// assert!(g.check_legal().is_ok());
/// assert_eq!(g.time(a), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Csdfg {
    graph: DiGraph<Task, Dep>,
    // ORDERED: name -> id lookup index on the add_task/task_by_name
    // path; never iterated, so its order cannot reach any output.
    by_name: HashMap<String, NodeId>,
}

impl Default for Csdfg {
    fn default() -> Self {
        Self::new()
    }
}

impl Csdfg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Csdfg {
            graph: DiGraph::new(),
            by_name: HashMap::new(), // ORDERED: see field note
        }
    }

    /// Adds a task with the given `name` and computation time `time`.
    pub fn add_task(&mut self, name: impl Into<String>, time: u32) -> Result<NodeId, ModelError> {
        let name = name.into();
        if time == 0 {
            return Err(ModelError::ZeroTime(name));
        }
        if self.by_name.contains_key(&name) {
            return Err(ModelError::DuplicateTask(name));
        }
        let id = self.graph.add_node(Task {
            name: name.clone(),
            time,
        });
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Adds a dependency edge `src -> dst` with `delay` loop-carried
    /// delays and communication `volume`.
    pub fn add_dep(
        &mut self,
        src: NodeId,
        dst: NodeId,
        delay: u32,
        volume: u32,
    ) -> Result<EdgeId, ModelError> {
        if volume == 0 {
            return Err(ModelError::ZeroVolume);
        }
        Ok(self.graph.add_edge(src, dst, Dep { delay, volume }))
    }

    /// Looks a task up by name.
    pub fn task_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Borrow the underlying graph (read-only).
    pub fn graph(&self) -> &DiGraph<Task, Dep> {
        &self.graph
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of dependency edges.
    pub fn dep_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Iterator over task node ids.
    pub fn tasks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.node_ids()
    }

    /// Iterator over dependency edge ids.
    pub fn deps(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.graph.edge_ids()
    }

    /// Name of task `v`.
    pub fn name(&self, v: NodeId) -> &str {
        &self.graph[v].name
    }

    /// Computation time `t(v)`.
    pub fn time(&self, v: NodeId) -> u32 {
        self.graph[v].time
    }

    /// Delay count `d(e)`.
    pub fn delay(&self, e: EdgeId) -> u32 {
        self.graph[e].delay
    }

    /// Communication volume `c(e)`.
    pub fn volume(&self, e: EdgeId) -> u32 {
        self.graph[e].volume
    }

    /// Overwrites the delay count of edge `e` (used by retiming).
    pub fn set_delay(&mut self, e: EdgeId, delay: u32) {
        self.graph[e].delay = delay;
    }

    /// Endpoints `(src, dst)` of a dependency edge.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.graph.edge_endpoints(e)
    }

    /// In-edges of `v`.
    pub fn in_deps(&self, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.graph.in_edges(v)
    }

    /// Out-edges of `v`.
    pub fn out_deps(&self, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.graph.out_edges(v)
    }

    /// Predecessor tasks of `v` (with edge multiplicity).
    pub fn preds(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.predecessors(v)
    }

    /// Successor tasks of `v` (with edge multiplicity).
    pub fn succs(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.successors(v)
    }

    /// Sum of all delays in the graph (a retiming invariant on cycles,
    /// but *not* globally — useful in tests).
    pub fn total_delay(&self) -> u64 {
        self.deps().map(|e| u64::from(self.delay(e))).sum()
    }

    /// Sum of all computation times.
    pub fn total_time(&self) -> u64 {
        self.tasks().map(|v| u64::from(self.time(v))).sum()
    }

    /// Checks the paper's legality condition: every directed cycle has a
    /// strictly positive total delay.  Because delays are non-negative
    /// this is equivalent to the zero-delay edge sub-graph being acyclic.
    pub fn check_legal(&self) -> Result<(), ModelError> {
        match self.zero_delay_topo() {
            Ok(_) => Ok(()),
            Err(c) => Err(ModelError::ZeroDelayCycle(c.witness)),
        }
    }

    /// Topological order of the zero-delay (intra-iteration) DAG view.
    pub fn zero_delay_topo(&self) -> Result<Vec<NodeId>, CycleError> {
        topo_sort_filtered(&self.graph, |e| self.graph[e].delay == 0)
    }

    /// The zero-delay in-edges of `v` — its same-iteration dependencies.
    pub fn intra_iter_in_deps(&self, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.in_deps(v).filter(|&e| self.delay(e) == 0)
    }

    /// The zero-delay out-edges of `v`.
    pub fn intra_iter_out_deps(&self, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_deps(v).filter(|&e| self.delay(e) == 0)
    }

    /// Maps node names to ids for a whole slice at once (test helper
    /// ergonomics).
    pub fn lookup_all(&self, names: &[&str]) -> Result<Vec<NodeId>, ModelError> {
        names
            .iter()
            .map(|n| {
                self.task_by_name(n)
                    .ok_or_else(|| ModelError::UnknownTask((*n).into()))
            })
            .collect()
    }
}

impl fmt::Display for Csdfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CSDFG: {} tasks, {} deps",
            self.task_count(),
            self.dep_count()
        )?;
        for v in self.tasks() {
            writeln!(f, "  node {} t={}", self.name(v), self.time(v))?;
        }
        for e in self.deps() {
            let (u, v) = self.endpoints(e);
            writeln!(
                f,
                "  edge {} -> {} d={} c={}",
                self.name(u),
                self.name(v),
                self.delay(e),
                self.volume(e)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_loop() -> (Csdfg, NodeId, NodeId) {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 2, 3).unwrap();
        (g, a, b)
    }

    #[test]
    fn accessors() {
        let (g, a, b) = two_node_loop();
        assert_eq!(g.task_count(), 2);
        assert_eq!(g.dep_count(), 2);
        assert_eq!(g.name(a), "A");
        assert_eq!(g.time(b), 2);
        assert_eq!(g.task_by_name("B"), Some(b));
        assert_eq!(g.task_by_name("Z"), None);
        assert_eq!(g.total_delay(), 2);
        assert_eq!(g.total_time(), 3);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = Csdfg::new();
        g.add_task("A", 1).unwrap();
        assert_eq!(
            g.add_task("A", 1),
            Err(ModelError::DuplicateTask("A".into()))
        );
    }

    #[test]
    fn zero_time_and_zero_volume_rejected() {
        let mut g = Csdfg::new();
        assert_eq!(g.add_task("A", 0), Err(ModelError::ZeroTime("A".into())));
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        assert_eq!(g.add_dep(a, b, 0, 0), Err(ModelError::ZeroVolume));
    }

    #[test]
    fn legality_depends_on_cycle_delays() {
        let (g, _, _) = two_node_loop();
        assert!(g.check_legal().is_ok());

        let mut bad = Csdfg::new();
        let a = bad.add_task("A", 1).unwrap();
        let b = bad.add_task("B", 1).unwrap();
        bad.add_dep(a, b, 0, 1).unwrap();
        bad.add_dep(b, a, 0, 1).unwrap();
        assert!(matches!(
            bad.check_legal(),
            Err(ModelError::ZeroDelayCycle(_))
        ));
    }

    #[test]
    fn zero_delay_topo_ignores_delayed_edges() {
        let (g, a, b) = two_node_loop();
        assert_eq!(g.zero_delay_topo().unwrap(), vec![a, b]);
    }

    #[test]
    fn intra_iteration_edge_filters() {
        let (g, a, b) = two_node_loop();
        assert_eq!(g.intra_iter_in_deps(b).count(), 1);
        assert_eq!(g.intra_iter_in_deps(a).count(), 0);
        assert_eq!(g.intra_iter_out_deps(a).count(), 1);
    }

    #[test]
    fn set_delay_mutates() {
        let (mut g, a, _) = two_node_loop();
        let e = g.out_deps(a).next().unwrap();
        g.set_delay(e, 5);
        assert_eq!(g.delay(e), 5);
    }

    #[test]
    fn lookup_all_reports_unknown() {
        let (g, a, b) = two_node_loop();
        assert_eq!(g.lookup_all(&["A", "B"]).unwrap(), vec![a, b]);
        assert!(matches!(
            g.lookup_all(&["A", "Q"]),
            Err(ModelError::UnknownTask(_))
        ));
    }

    #[test]
    fn display_lists_everything() {
        let (g, _, _) = two_node_loop();
        let s = g.to_string();
        assert!(s.contains("node A t=1"));
        assert!(s.contains("edge B -> A d=2 c=3"));
    }

    #[test]
    fn paper_fig1_graph_is_legal() {
        // Figure 1(b) of the paper.
        let mut g = Csdfg::new();
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| {
                let t = if *n == "B" || *n == "E" { 2 } else { 1 };
                g.add_task(*n, t).unwrap()
            })
            .collect();
        let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(a, c, 0, 1).unwrap();
        g.add_dep(a, e, 0, 1).unwrap();
        g.add_dep(b, d, 0, 1).unwrap();
        g.add_dep(b, e, 0, 2).unwrap();
        g.add_dep(c, e, 0, 1).unwrap();
        g.add_dep(d, a, 3, 3).unwrap();
        g.add_dep(d, f, 0, 2).unwrap();
        g.add_dep(e, f, 0, 1).unwrap();
        g.add_dep(f, e, 1, 1).unwrap();
        assert!(g.check_legal().is_ok());
        assert_eq!(g.total_delay(), 4);
    }
}

//! A small text format for CSDFGs, plus the matching writer.
//!
//! ```text
//! # fifth-order filter fragment
//! node A t=1
//! node B t=2
//! edge A -> B d=0 c=1
//! edge B -> A d=3 c=2
//! ```
//!
//! * `t=` defaults to 1, `d=` to 0, `c=` to 1 when omitted;
//! * `#` starts a comment; blank lines are ignored;
//! * nodes referenced by an `edge` line before being declared are
//!   implicitly created with `t=1`.

use crate::csdfg::{Csdfg, ModelError};
use std::fmt;

/// Parse error with 1-based line information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

fn model_err(line: usize, e: ModelError) -> ParseError {
    ParseError::new(line, e.to_string())
}

/// Parses the textual CSDFG format.
pub fn parse(input: &str) -> Result<Csdfg, ParseError> {
    let mut g = Csdfg::new();
    for (ix, raw) in input.lines().enumerate() {
        let lineno = ix + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("node") => {
                let name = tokens
                    .next()
                    .ok_or_else(|| ParseError::new(lineno, "node: missing name"))?;
                let mut time = 1u32;
                for tok in tokens {
                    match parse_kv(tok, lineno)? {
                        ('t', v) => time = v,
                        (k, _) => {
                            return Err(ParseError::new(
                                lineno,
                                format!("node: unknown attribute {k}="),
                            ))
                        }
                    }
                }
                g.add_task(name, time).map_err(|e| model_err(lineno, e))?;
            }
            Some("edge") => {
                let src = tokens
                    .next()
                    .ok_or_else(|| ParseError::new(lineno, "edge: missing source"))?;
                let arrow = tokens.next();
                if arrow != Some("->") {
                    return Err(ParseError::new(lineno, "edge: expected '->'"));
                }
                let dst = tokens
                    .next()
                    .ok_or_else(|| ParseError::new(lineno, "edge: missing target"))?;
                let mut delay = 0u32;
                let mut volume = 1u32;
                for tok in tokens {
                    match parse_kv(tok, lineno)? {
                        ('d', v) => delay = v,
                        ('c', v) => volume = v,
                        (k, _) => {
                            return Err(ParseError::new(
                                lineno,
                                format!("edge: unknown attribute {k}="),
                            ))
                        }
                    }
                }
                let s = match g.task_by_name(src) {
                    Some(s) => s,
                    None => g.add_task(src, 1).map_err(|e| model_err(lineno, e))?,
                };
                let d = match g.task_by_name(dst) {
                    Some(d) => d,
                    None => g.add_task(dst, 1).map_err(|e| model_err(lineno, e))?,
                };
                g.add_dep(s, d, delay, volume)
                    .map_err(|e| model_err(lineno, e))?;
            }
            Some(other) => {
                return Err(ParseError::new(
                    lineno,
                    format!("unknown directive {other:?}"),
                ))
            }
            None => unreachable!("blank lines were filtered"),
        }
    }
    Ok(g)
}

fn parse_kv(tok: &str, line: usize) -> Result<(char, u32), ParseError> {
    let (key, value) = tok
        .split_once('=')
        .ok_or_else(|| ParseError::new(line, format!("expected key=value, got {tok:?}")))?;
    let mut chars = key.chars();
    let k = chars
        .next()
        .filter(|_| chars.next().is_none())
        .ok_or_else(|| ParseError::new(line, format!("bad attribute key {key:?}")))?;
    let v: u32 = value
        .parse()
        .map_err(|_| ParseError::new(line, format!("bad integer {value:?}")))?;
    Ok((k, v))
}

/// Serializes `g` back into the textual format accepted by [`parse`].
pub fn write(g: &Csdfg) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for v in g.tasks() {
        let _ = writeln!(out, "node {} t={}", g.name(v), g.time(v));
    }
    for e in g.deps() {
        let (u, v) = g.endpoints(e);
        let _ = writeln!(
            out,
            "edge {} -> {} d={} c={}",
            g.name(u),
            g.name(v),
            g.delay(e),
            g.volume(e)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_graph() {
        let g = parse(
            "# comment\n\
             node A t=1\n\
             node B t=2\n\
             edge A -> B d=0 c=1\n\
             edge B -> A d=3 c=2\n",
        )
        .unwrap();
        assert_eq!(g.task_count(), 2);
        assert_eq!(g.dep_count(), 2);
        let b = g.task_by_name("B").unwrap();
        assert_eq!(g.time(b), 2);
        let e = g.out_deps(b).next().unwrap();
        assert_eq!((g.delay(e), g.volume(e)), (3, 2));
    }

    #[test]
    fn defaults_apply() {
        let g = parse("edge X -> Y\n").unwrap();
        let x = g.task_by_name("X").unwrap();
        assert_eq!(g.time(x), 1);
        let e = g.out_deps(x).next().unwrap();
        assert_eq!((g.delay(e), g.volume(e)), (0, 1));
    }

    #[test]
    fn inline_comments_and_blank_lines() {
        let g = parse("\n  node A t=4 # four cycles\n\n").unwrap();
        assert_eq!(g.time(g.task_by_name("A").unwrap()), 4);
    }

    #[test]
    fn error_reports_line_numbers() {
        let err = parse("node A\nbogus Z\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn rejects_bad_arrow() {
        let err = parse("edge A => B\n").unwrap_err();
        assert!(err.message.contains("expected '->'"));
    }

    #[test]
    fn rejects_bad_integer() {
        let err = parse("node A t=abc\n").unwrap_err();
        assert!(err.message.contains("bad integer"));
    }

    #[test]
    fn rejects_duplicate_node() {
        let err = parse("node A\nnode A\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn rejects_unknown_attribute() {
        let err = parse("edge A -> B q=3\n").unwrap_err();
        assert!(err.message.contains("unknown attribute"));
    }

    #[test]
    fn round_trip() {
        let src = "node A t=1\nnode B t=2\nedge A -> B d=0 c=1\nedge B -> A d=3 c=2\n";
        let g = parse(src).unwrap();
        let emitted = write(&g);
        let g2 = parse(&emitted).unwrap();
        assert_eq!(g2.task_count(), g.task_count());
        assert_eq!(g2.dep_count(), g.dep_count());
        assert_eq!(g2.total_delay(), g.total_delay());
        assert_eq!(write(&g2), emitted);
    }
}

//! # ccs-model
//!
//! The *communication-sensitive data-flow graph* (CSDFG) model from
//! Tongsima/Passos/Sha, ICPP 1995, §2: cyclic data-flow graphs
//! `G = (V, E, d, t, c)` with per-node computation times, per-edge
//! loop-carried delay counts, and per-edge communication volumes.
//!
//! * [`Csdfg`] — the graph type, with legality checking (every directed
//!   cycle must carry at least one delay) and the zero-delay DAG view
//!   used by the start-up scheduler;
//! * [`timing`] — ASAP/ALAP/mobility/critical-path analysis
//!   (Definition 3.4's `MB` comes from here);
//! * [`transform`] — slow-down (Table 11 runs filters at slow-down 3)
//!   and unfolding;
//! * [`parser`] — a small text format for graphs, plus a writer;
//! * [`spec`] — serde-friendly flat representation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
mod csdfg;
pub mod parser;
pub mod spec;
pub mod timing;
pub mod transform;

pub use csdfg::{Csdfg, Dep, ModelError, Task};
// Re-export the id types: every downstream crate speaks in them.
pub use ccs_graph::{EdgeId, NodeId};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy: a random legal CSDFG (random DAG over `n` nodes from the
    /// zero-delay edges, plus random back edges that always carry >= 1
    /// delay).
    fn arb_csdfg(max_nodes: usize) -> impl Strategy<Value = Csdfg> {
        (2..=max_nodes).prop_flat_map(|n| {
            let times = proptest::collection::vec(1u32..4, n);
            // forward edges (i < j): optional delay 0..2; back edges
            // (i >= j): delay 1..4.
            let edges = proptest::collection::vec((0..n, 0..n, 0u32..3, 1u32..4), 0..n * 2);
            (times, edges).prop_map(move |(times, edges)| {
                let mut g = Csdfg::new();
                let ids: Vec<_> = times
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| g.add_task(format!("v{i}"), t).unwrap())
                    .collect();
                for (a, b, d, c) in edges {
                    let delay = if a < b { d } else { d.max(1) };
                    g.add_dep(ids[a], ids[b], delay, c).unwrap();
                }
                g
            })
        })
    }

    proptest! {
        #[test]
        fn generated_graphs_are_legal(g in arb_csdfg(12)) {
            prop_assert!(g.check_legal().is_ok());
        }

        #[test]
        fn parser_round_trips(g in arb_csdfg(10)) {
            let text = parser::write(&g);
            let g2 = parser::parse(&text).unwrap();
            prop_assert_eq!(g2.task_count(), g.task_count());
            prop_assert_eq!(g2.dep_count(), g.dep_count());
            prop_assert_eq!(g2.total_delay(), g.total_delay());
            prop_assert_eq!(g2.total_time(), g.total_time());
        }

        #[test]
        fn spec_round_trips(g in arb_csdfg(10)) {
            let spec = spec::CsdfgSpec::from(&g);
            let g2 = spec.build().unwrap();
            prop_assert_eq!(spec::CsdfgSpec::from(&g2), spec);
        }

        #[test]
        fn asap_never_exceeds_alap(g in arb_csdfg(12)) {
            let t = timing::analyze(&g).unwrap();
            for v in g.tasks() {
                prop_assert!(t.asap(v) <= t.alap(v));
                prop_assert!(t.asap(v) + g.time(v) - 1 <= t.critical_path);
                prop_assert!(t.alap(v) + g.time(v) - 1 <= t.critical_path);
            }
        }

        #[test]
        fn critical_path_bounded_by_total_time(g in arb_csdfg(12)) {
            let t = timing::analyze(&g).unwrap();
            prop_assert!(u64::from(t.critical_path) <= g.total_time());
        }

        #[test]
        fn slowdown_preserves_legality_and_scales_delay(
            g in arb_csdfg(10),
            f in 1u32..4,
        ) {
            let s = transform::slowdown(&g, f);
            prop_assert!(s.check_legal().is_ok());
            prop_assert_eq!(s.total_delay(), g.total_delay() * u64::from(f));
        }

        #[test]
        fn unfold_preserves_delay_and_legality(
            g in arb_csdfg(8),
            f in 1u32..4,
        ) {
            let u = transform::unfold(&g, f);
            prop_assert!(u.check_legal().is_ok());
            prop_assert_eq!(u.total_delay(), g.total_delay());
            prop_assert_eq!(u.task_count(), g.task_count() * f as usize);
            prop_assert_eq!(u.dep_count(), g.dep_count() * f as usize);
        }
    }
}

//! Whole-graph transformations: slow-down and unfolding.
//!
//! The paper's Table 11 runs the elliptic and lattice filters "with a
//! slow down factor of 3" — the classical multirate transformation that
//! multiplies every delay count by a constant, creating extra
//! loop-carried slack for pipelining.  Unfolding is the dual
//! transformation (schedule `f` consecutive iterations at once) and is
//! provided as the natural extension.

use crate::csdfg::Csdfg;
use ccs_graph::NodeId;
use std::collections::BTreeMap;

/// Returns a copy of `g` with every delay multiplied by `factor`
/// (slow-down transformation).  `factor == 0` is rejected because it
/// would produce zero-delay cycles from any cyclic graph.
///
/// # Panics
///
/// Panics if `factor == 0`.
pub fn slowdown(g: &Csdfg, factor: u32) -> Csdfg {
    assert!(factor >= 1, "slow-down factor must be >= 1");
    let mut out = Csdfg::new();
    let mut map: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for v in g.tasks() {
        let nv = out
            .add_task(g.name(v).to_owned(), g.time(v))
            .expect("names unique in source graph");
        map.insert(v, nv);
    }
    for e in g.deps() {
        let (u, v) = g.endpoints(e);
        out.add_dep(map[&u], map[&v], g.delay(e) * factor, g.volume(e))
            .expect("volumes positive in source graph");
    }
    out
}

/// Unfolds `g` by factor `f`: the result contains `f` copies
/// `name#0 .. name#f-1` of every task, representing `f` consecutive
/// iterations of the original loop scheduled together.
///
/// For an edge `u -> v` with delay `d`, copy `i` of `u` feeds copy
/// `(i + d) mod f` of `v` with delay `floor((i + d) / f)` — the standard
/// unfolding construction, which preserves the total delay per original
/// edge and the iteration bound.
///
/// # Panics
///
/// Panics if `f == 0`.
pub fn unfold(g: &Csdfg, f: u32) -> Csdfg {
    assert!(f >= 1, "unfolding factor must be >= 1");
    let mut out = Csdfg::new();
    let mut map: BTreeMap<(NodeId, u32), NodeId> = BTreeMap::new();
    for v in g.tasks() {
        for i in 0..f {
            let nv = out
                .add_task(format!("{}#{}", g.name(v), i), g.time(v))
                .expect("generated names are unique");
            map.insert((v, i), nv);
        }
    }
    for e in g.deps() {
        let (u, v) = g.endpoints(e);
        let d = g.delay(e);
        for i in 0..f {
            let j = (i + d) % f;
            let dj = (i + d) / f;
            out.add_dep(map[&(u, i)], map[&(v, j)], dj, g.volume(e))
                .expect("volumes positive in source graph");
        }
    }
    out
}

/// Extracts the sub-graph of everything that (transitively) feeds the
/// `keep` tasks — dead-code elimination for lowered kernels and a
/// slicing tool for large graphs.  Edge directions and delays are
/// preserved; tasks with no path to any kept task are dropped.
///
/// # Panics
///
/// Panics if `keep` contains an id that is not a live task of `g`.
pub fn prune_to(g: &Csdfg, keep: &[NodeId]) -> Csdfg {
    // Backward reachability over all edges (delayed edges carry data
    // across iterations; their producers are still needed).
    let bound = g.graph().node_bound();
    let mut needed = vec![false; bound];
    let mut stack: Vec<NodeId> = Vec::new();
    for &v in keep {
        assert!(
            g.graph().contains_node(v),
            "prune_to: {v} is not a live task of this graph"
        );
        if !needed[v.index()] {
            needed[v.index()] = true;
            stack.push(v);
        }
    }
    while let Some(v) = stack.pop() {
        for u in g.preds(v) {
            if !needed[u.index()] {
                needed[u.index()] = true;
                stack.push(u);
            }
        }
    }
    let mut out = Csdfg::new();
    let mut map: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for v in g.tasks().filter(|v| needed[v.index()]) {
        let nv = out
            .add_task(g.name(v).to_owned(), g.time(v))
            .expect("names unique");
        map.insert(v, nv);
    }
    for e in g.deps() {
        let (u, v) = g.endpoints(e);
        if needed[u.index()] && needed[v.index()] {
            out.add_dep(map[&u], map[&v], g.delay(e), g.volume(e))
                .expect("volume >= 1");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loop2() -> Csdfg {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 2, 3).unwrap();
        g
    }

    #[test]
    fn slowdown_multiplies_delays_only() {
        let g = loop2();
        let s = slowdown(&g, 3);
        assert_eq!(s.task_count(), 2);
        assert_eq!(s.dep_count(), 2);
        assert_eq!(s.total_delay(), 6);
        assert_eq!(s.total_time(), g.total_time());
        // volumes and times are untouched
        let b = s.task_by_name("B").unwrap();
        assert_eq!(s.time(b), 2);
        let e = s.out_deps(b).next().unwrap();
        assert_eq!(s.volume(e), 3);
        assert_eq!(s.delay(e), 6);
    }

    #[test]
    fn slowdown_by_one_is_identity_shape() {
        let g = loop2();
        let s = slowdown(&g, 1);
        assert_eq!(s.total_delay(), g.total_delay());
        assert!(s.check_legal().is_ok());
    }

    #[test]
    #[should_panic(expected = "slow-down factor must be >= 1")]
    fn slowdown_zero_panics() {
        slowdown(&loop2(), 0);
    }

    #[test]
    fn unfold_replicates_nodes() {
        let g = loop2();
        let u = unfold(&g, 3);
        assert_eq!(u.task_count(), 6);
        assert_eq!(u.dep_count(), 6);
        assert!(u.task_by_name("A#0").is_some());
        assert!(u.task_by_name("B#2").is_some());
    }

    #[test]
    fn unfold_preserves_total_delay_per_edge() {
        let g = loop2();
        for f in 1..=5 {
            let u = unfold(&g, f);
            // Sum over copies of floor((i+d)/f) for i in 0..f equals d.
            assert_eq!(u.total_delay(), g.total_delay(), "factor {f}");
            assert!(u.check_legal().is_ok(), "factor {f}");
        }
    }

    #[test]
    fn unfold_wires_delay_zero_edges_within_same_copy() {
        let g = loop2();
        let u = unfold(&g, 2);
        // A -> B has d=0: A#i -> B#i with d=0.
        for i in 0..2 {
            let a = u.task_by_name(&format!("A#{i}")).unwrap();
            let b = u.task_by_name(&format!("B#{i}")).unwrap();
            let e = u.graph().find_edge(a, b).unwrap();
            assert_eq!(u.delay(e), 0);
        }
    }

    #[test]
    fn unfold_spreads_loop_carried_delays() {
        let g = loop2();
        let u = unfold(&g, 2);
        // B -> A with d=2: B#0 -> A#0 d=1, B#1 -> A#1 d=1.
        for i in 0..2 {
            let b = u.task_by_name(&format!("B#{i}")).unwrap();
            let a = u.task_by_name(&format!("A#{i}")).unwrap();
            let e = u.graph().find_edge(b, a).unwrap();
            assert_eq!(u.delay(e), 1);
        }
    }

    #[test]
    fn prune_drops_unreachable_tails() {
        // A -> B -> C with a side branch A -> D that nothing keeps.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        let c = g.add_task("C", 1).unwrap();
        let d = g.add_task("D", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, c, 0, 1).unwrap();
        g.add_dep(a, d, 0, 1).unwrap();
        g.add_dep(c, a, 1, 1).unwrap();
        let pruned = prune_to(&g, &[c]);
        assert_eq!(pruned.task_count(), 3);
        assert!(pruned.task_by_name("D").is_none());
        assert!(pruned.check_legal().is_ok());
        // the loop-carried feed of A is kept
        let (ca, aa) = (
            pruned.task_by_name("C").unwrap(),
            pruned.task_by_name("A").unwrap(),
        );
        assert_eq!(pruned.delay(pruned.graph().find_edge(ca, aa).unwrap()), 1);
    }

    #[test]
    fn prune_follows_delayed_producers() {
        // keep consumes X only through a 2-delay edge: X must survive.
        let mut g = Csdfg::new();
        let x = g.add_task("X", 1).unwrap();
        let y = g.add_task("Y", 1).unwrap();
        g.add_dep(x, y, 2, 1).unwrap();
        g.add_dep(x, x, 1, 1).unwrap();
        let pruned = prune_to(&g, &[y]);
        assert_eq!(pruned.task_count(), 2);
        assert!(pruned.task_by_name("X").is_some());
    }

    #[test]
    fn prune_to_everything_is_identity_shape() {
        let g = loop2();
        let keep: Vec<_> = g.tasks().collect();
        let pruned = prune_to(&g, &keep);
        assert_eq!(pruned.task_count(), g.task_count());
        assert_eq!(pruned.dep_count(), g.dep_count());
        assert_eq!(pruned.total_delay(), g.total_delay());
    }

    #[test]
    #[should_panic(expected = "not a live task")]
    fn prune_rejects_foreign_ids() {
        let g = loop2();
        let other = loop2();
        let foreign = ccs_graph::NodeId::from_index(other.task_count() + 5);
        let _ = prune_to(&g, &[foreign]);
    }

    #[test]
    fn unfold_delay_one_crosses_copies() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        g.add_dep(a, a, 1, 1).unwrap(); // self loop with one delay
        let u = unfold(&g, 3);
        // A#0 -> A#1 d=0, A#1 -> A#2 d=0, A#2 -> A#0 d=1.
        let n: Vec<_> = (0..3)
            .map(|i| u.task_by_name(&format!("A#{i}")).unwrap())
            .collect();
        assert_eq!(u.delay(u.graph().find_edge(n[0], n[1]).unwrap()), 0);
        assert_eq!(u.delay(u.graph().find_edge(n[1], n[2]).unwrap()), 0);
        assert_eq!(u.delay(u.graph().find_edge(n[2], n[0]).unwrap()), 1);
        assert!(u.check_legal().is_ok());
    }
}

//! Golden HTML report for the paper's running example on the 2x2
//! mesh.  The report is a pure function of the (deterministic) event
//! stream, the machine, and the certificate — independent of build
//! profile and thread count — so the exact bytes are pinned.
//!
//! To regenerate after an intentional renderer or scheduler change:
//!
//! ```text
//! UPDATE_REPORT_GOLDEN=1 cargo test -p ccs-report --test golden_report
//! ```

use ccs_core::compact::{cyclo_compact, CompactConfig};
use ccs_report::diff::{render_diff_report, DiffInput, DiffSide};
use ccs_report::{check::check_html, render_report, ReportInput};
use ccs_topology::Machine;
use std::path::PathBuf;

fn fig1_report(machine: &Machine) -> String {
    let g = ccs_workloads::paper::fig1_example();
    let (outcome, events) =
        ccs_trace::record(|| cyclo_compact(&g, machine, CompactConfig::default()));
    let result = outcome.expect("legal");
    let profile = ccs_profile::build(&events, machine);
    let certificate = ccs_bounds::certify_period(&g, machine, result.best_length);
    render_report(
        &ReportInput {
            title: &format!("fig1 on {}", machine.name()),
            events: &events,
            machine,
            profile: &profile,
            certificate: Some(&certificate),
        },
        |n| {
            g.name(ccs_graph::NodeId::from_index(n as usize))
                .to_string()
        },
    )
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.html"))
}

#[test]
fn fig1_report_on_mesh_is_pinned_and_valid() {
    let machine = Machine::mesh(2, 2);
    let actual = fig1_report(&machine);

    let facts = check_html(&actual).unwrap_or_else(|e| panic!("report fails report-check: {e:?}"));
    assert_eq!(facts.sections, 4, "the four panels");
    assert!(facts.svgs >= 2, "at least a Gantt and one heatmap");
    assert!(
        facts.conserved >= 1,
        "mesh heatmaps carry conservation totals"
    );

    let path = golden_path("fig1_mesh2x2");
    if std::env::var_os("UPDATE_REPORT_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "report drifted for fig1_mesh2x2; if intentional, regenerate with \
         UPDATE_REPORT_GOLDEN=1 cargo test -p ccs-report --test golden_report"
    );
}

fn fig1_diff_report(ma: &Machine, mb: &Machine) -> String {
    let g = ccs_workloads::paper::fig1_example();
    let cfg = CompactConfig::default();
    let ((ra, ea), (rb, eb)) =
        ccs_trace::record_pair(|| cyclo_compact(&g, ma, cfg), || cyclo_compact(&g, mb, cfg));
    let (ra, rb) = (ra.expect("legal"), rb.expect("legal"));
    let pa = ccs_profile::build(&ea, ma);
    let pb = ccs_profile::build(&eb, mb);
    let ca = ccs_bounds::certify_period(&g, ma, ra.best_length);
    let cb = ccs_bounds::certify_period(&g, mb, rb.best_length);
    render_diff_report(
        &DiffInput {
            title: &format!("fig1: {} vs {}", ma.name(), mb.name()),
            a: DiffSide {
                label: ma.name(),
                events: &ea,
                machine: ma,
                profile: &pa,
                certificate: Some(&ca),
            },
            b: DiffSide {
                label: mb.name(),
                events: &eb,
                machine: mb,
                profile: &pb,
                certificate: Some(&cb),
            },
        },
        |n| {
            g.name(ccs_graph::NodeId::from_index(n as usize))
                .to_string()
        },
    )
}

#[test]
fn fig1_mesh_vs_complete_diff_is_pinned_and_valid() {
    let (ma, mb) = (Machine::mesh(2, 2), Machine::complete(4));
    let actual = fig1_diff_report(&ma, &mb);

    let facts = check_html(&actual).unwrap_or_else(|e| panic!("diff fails report-check: {e:?}"));
    assert_eq!(facts.sections, 4, "the four diff panels");
    assert!(
        facts.conserved >= 2,
        "both sides' final heatmaps conserve traffic"
    );
    assert!(actual.contains("data-side=\"a\""));
    assert!(actual.contains("data-side=\"b\""));
    assert!(actual.contains("data-side=\"delta\""));

    let path = golden_path("fig1_mesh_vs_complete");
    if std::env::var_os("UPDATE_REPORT_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "diff report drifted for fig1_mesh_vs_complete; if intentional, regenerate with \
         UPDATE_REPORT_GOLDEN=1 cargo test -p ccs-report --test golden_report"
    );
}

#[test]
fn diff_report_is_independent_of_recording_context() {
    let (ma, mb) = (Machine::ring(4), Machine::linear_array(4));
    assert_eq!(fig1_diff_report(&ma, &mb), fig1_diff_report(&ma, &mb));
}

#[test]
fn report_is_independent_of_recording_context() {
    // Rendering twice from independently recorded runs must agree
    // byte-for-byte: no wall-clock content, no iteration-order leaks.
    let machine = Machine::ring(4);
    assert_eq!(fig1_report(&machine), fig1_report(&machine));
}

//! Structural validator for rendered reports, shared by the
//! `report-check` binary and the crate's own tests.
//!
//! The checks are deliberately mechanical — they re-verify the
//! renderer's output contract on the artifact itself, independent of
//! the code that produced it:
//!
//! * document shell: starts with the doctype, ends with `</html>`, and
//!   contains no `<script`;
//! * markup discipline: every `<` opens a whitelisted tag (so any
//!   dynamic text must have gone through the escape helper), and every
//!   `&` starts a known entity;
//! * SVG sanity: each `<svg>` carries `width`/`height` matching its
//!   `viewBox="0 0 W H"` within sane limits;
//! * conservation: on every heatmap marked `data-routable="true"`, the
//!   embedded per-pass ledger total equals the link-load total — the
//!   hop·volume charged to edges is exactly the volume charged to
//!   links;
//! * diff pages: any `data-side="a"`/`"b"` marker implies *both* sides
//!   are present, and each side that shows routable traffic shows at
//!   least one conserved heatmap — a comparison that conserves on one
//!   side only is lying about the other;
//! * grid pages: the legend's `data-grid-cells="N"` must equal the
//!   number of `data-cell`-tagged heatmaps, and cell ids must be
//!   unique — one panel per metered cell, no more, no fewer.
//!
//! [`check_svg`] applies the same markup scan to a standalone SVG
//! export (`--heatmap-svg`), which must additionally declare the SVG
//! namespace to stand alone.

/// Tags the renderer is allowed to emit.  Anything else means raw text
/// leaked around the escape helper.
const TAGS: &[&str] = &[
    "html", "head", "meta", "title", "style", "body", "h1", "h2", "h3", "p", "span", "section",
    "table", "thead", "tbody", "tr", "th", "td", "details", "summary", "pre", "div", "svg", "g",
    "rect", "text", "line", "polyline", "circle",
];

/// Entities the escape helper produces.
const ENTITIES: &[&str] = &["amp;", "lt;", "gt;", "quot;", "#39;"];

/// Maximum sane SVG dimension, in px.
const MAX_DIM: u64 = 100_000;

/// What a successful validation saw, for the binary's summary line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReportFacts {
    /// `<svg>` elements validated.
    pub svgs: usize,
    /// Heatmaps whose ledger/link conservation was checked.
    pub conserved: usize,
    /// `<section>` elements seen.
    pub sections: usize,
    /// `data-cell`-tagged grid heatmaps seen.
    pub grid_cells: usize,
}

/// One scanned `<svg>`'s comparison/grid markers, for the post-scan
/// page-level rules.
struct SvgMarks {
    side: Option<String>,
    cell: Option<String>,
    routable: bool,
    conserved: bool,
    declared_cells: Option<u64>,
}

/// Mutable scan state: the public facts plus the per-svg markers the
/// page-level rules need after the scan.
#[derive(Default)]
struct ScanState {
    facts: ReportFacts,
    marks: Vec<SvgMarks>,
}

fn attr<'a>(tag: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("{key}=\"");
    let start = tag.find(&pat)? + pat.len();
    let end = tag[start..].find('"')?;
    Some(&tag[start..start + end])
}

fn check_svg_tag(tag: &str, errors: &mut Vec<String>, state: &mut ScanState) {
    state.facts.svgs += 1;
    let n = state.facts.svgs;
    let mut marks = SvgMarks {
        side: attr(tag, "data-side").map(str::to_string),
        cell: attr(tag, "data-cell").map(str::to_string),
        routable: attr(tag, "data-routable") == Some("true"),
        conserved: false,
        declared_cells: None,
    };
    if let Some(d) = attr(tag, "data-grid-cells") {
        match d.parse::<u64>() {
            Ok(v) => marks.declared_cells = Some(v),
            Err(_) => errors.push(format!("svg #{n}: non-numeric data-grid-cells \"{d}\"")),
        }
    }
    if marks.cell.is_some() {
        state.facts.grid_cells += 1;
    }
    let (Some(w), Some(h), Some(vb)) = (
        attr(tag, "width"),
        attr(tag, "height"),
        attr(tag, "viewBox"),
    ) else {
        errors.push(format!("svg #{n}: missing width/height/viewBox"));
        state.marks.push(marks);
        return;
    };
    let (Ok(wn), Ok(hn)) = (w.parse::<u64>(), h.parse::<u64>()) else {
        errors.push(format!("svg #{n}: non-numeric dimensions {w}x{h}"));
        state.marks.push(marks);
        return;
    };
    if !(1..=MAX_DIM).contains(&wn) || !(1..=MAX_DIM).contains(&hn) {
        errors.push(format!("svg #{n}: insane dimensions {wn}x{hn}"));
    }
    if vb != format!("0 0 {w} {h}") {
        errors.push(format!(
            "svg #{n}: viewBox \"{vb}\" disagrees with width/height {w}x{h}"
        ));
    }
    if marks.routable {
        match (attr(tag, "data-ledger-total"), attr(tag, "data-link-total")) {
            (Some(ledger), Some(link)) => {
                if ledger != link {
                    errors.push(format!(
                        "svg #{n}: conservation violated — ledger total {ledger} != link total {link}"
                    ));
                } else {
                    state.facts.conserved += 1;
                    marks.conserved = true;
                }
            }
            _ => errors.push(format!(
                "svg #{n}: routable heatmap without conservation totals"
            )),
        }
    }
    state.marks.push(marks);
}

fn scan_markup(html: &str, errors: &mut Vec<String>, state: &mut ScanState) {
    let bytes = html.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => {
                let rest = &html[i + 1..];
                let name: String = rest
                    .trim_start_matches('/')
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric())
                    .collect();
                if rest.starts_with("!DOCTYPE") || rest.starts_with("!--") {
                    // the shell's doctype (comments never emitted, but legal)
                } else if name.is_empty() || !TAGS.contains(&name.to_ascii_lowercase().as_str()) {
                    errors.push(format!(
                        "offset {i}: '<' does not open a whitelisted tag (saw {:?})",
                        &rest.chars().take(12).collect::<String>()
                    ));
                } else if name == "svg" && !rest.starts_with('/') {
                    let end = rest.find('>').unwrap_or(rest.len());
                    check_svg_tag(&rest[..end], errors, state);
                } else if name == "section" && !rest.starts_with('/') {
                    state.facts.sections += 1;
                }
                i += 1;
            }
            b'&' => {
                let rest = &html[i + 1..];
                if !ENTITIES.iter().any(|e| rest.starts_with(e)) {
                    errors.push(format!(
                        "offset {i}: '&' does not start a known entity (saw {:?})",
                        &rest.chars().take(8).collect::<String>()
                    ));
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Diff-page rule: `data-side` markers come in pairs.  If either side
/// appears, both must, and every side showing routable traffic must
/// show at least one conserved heatmap.
fn check_sides(state: &ScanState, errors: &mut Vec<String>) {
    let with_side = |s: &'static str| {
        state
            .marks
            .iter()
            .filter(move |m| m.side.as_deref() == Some(s))
    };
    let (seen_a, seen_b) = (with_side("a").count(), with_side("b").count());
    if seen_a + seen_b == 0 {
        return;
    }
    if seen_a == 0 || seen_b == 0 {
        errors.push(format!(
            "diff page shows only one side (a: {seen_a} svg(s), b: {seen_b} svg(s))"
        ));
    }
    for side in ["a", "b"] {
        let routable = with_side(side).filter(|m| m.routable).count();
        let conserved = with_side(side).filter(|m| m.conserved).count();
        if routable > 0 && conserved == 0 {
            errors.push(format!(
                "diff page side {side}: {routable} routable heatmap(s), none conserved"
            ));
        }
    }
}

/// Grid-page rule: the legend's declared cell count equals the number
/// of `data-cell` heatmaps, and cell ids are unique.
fn check_grid(state: &ScanState, errors: &mut Vec<String>) {
    let declared: Vec<u64> = state
        .marks
        .iter()
        .filter_map(|m| m.declared_cells)
        .collect();
    let mut cells: Vec<&str> = state
        .marks
        .iter()
        .filter_map(|m| m.cell.as_deref())
        .collect();
    match declared.as_slice() {
        [] => {
            if !cells.is_empty() {
                errors.push(format!(
                    "{} data-cell heatmap(s) but no legend declares data-grid-cells",
                    cells.len()
                ));
            }
        }
        [n] => {
            if *n != cells.len() as u64 {
                errors.push(format!(
                    "grid legend declares {n} cell(s) but the page has {} data-cell heatmap(s)",
                    cells.len()
                ));
            }
        }
        more => errors.push(format!(
            "{} svgs declare data-grid-cells; expected exactly one legend",
            more.len()
        )),
    }
    cells.sort_unstable();
    for pair in cells.windows(2) {
        if pair[0] == pair[1] {
            errors.push(format!("duplicate grid cell id \"{}\"", pair[0]));
        }
    }
}

/// Validates one rendered report.  Returns the facts on success, or
/// every violation found (never just the first) on failure.
pub fn check_html(html: &str) -> Result<ReportFacts, Vec<String>> {
    let mut errors = Vec::new();
    let mut state = ScanState::default();
    if !html.starts_with("<!DOCTYPE html>") {
        errors.push("document does not start with <!DOCTYPE html>".to_string());
    }
    if !html.trim_end().ends_with("</html>") {
        errors.push("document does not end with </html>".to_string());
    }
    if html.to_ascii_lowercase().contains("<script") {
        errors.push("document contains a <script> tag".to_string());
    }
    scan_markup(html, &mut errors, &mut state);
    check_sides(&state, &mut errors);
    check_grid(&state, &mut errors);
    if errors.is_empty() {
        Ok(state.facts)
    } else {
        Err(errors)
    }
}

/// Validates a standalone SVG export (`--heatmap-svg FILE`): same
/// markup/escaping/conservation scan as embedded heatmaps, plus the
/// standalone shell requirements — opens with `<svg`, declares the SVG
/// namespace, closes with `</svg>`, and contains no scripts.
pub fn check_svg(svg: &str) -> Result<ReportFacts, Vec<String>> {
    let mut errors = Vec::new();
    let mut state = ScanState::default();
    if !svg.starts_with("<svg") {
        errors.push("file does not start with <svg".to_string());
    }
    if !svg.trim_end().ends_with("</svg>") {
        errors.push("file does not end with </svg>".to_string());
    }
    let open = svg.split('>').next().unwrap_or("");
    if attr(open, "xmlns") != Some("http://www.w3.org/2000/svg") {
        errors.push("standalone svg does not declare the SVG namespace".to_string());
    }
    if svg.to_ascii_lowercase().contains("<script") {
        errors.push("svg contains a <script> tag".to_string());
    }
    scan_markup(svg, &mut errors, &mut state);
    if errors.is_empty() {
        Ok(state.facts)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell(body: &str) -> String {
        format!("<!DOCTYPE html>\n<html lang=\"en\"><body>{body}</body></html>\n")
    }

    #[test]
    fn a_clean_document_passes() {
        let facts = check_html(&shell(
            "<section id=\"a\"><p>2 &lt; 3 &amp; 4 &gt; 1 &quot;x&quot; &#39;y&#39;</p></section>",
        ))
        .expect("valid");
        assert_eq!(facts.sections, 1);
        assert_eq!(facts.svgs, 0);
    }

    #[test]
    fn unescaped_angle_bracket_is_caught() {
        let errs = check_html(&shell("<p>a <bogus> b</p>")).expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("whitelisted")), "{errs:?}");
    }

    #[test]
    fn bare_ampersand_is_caught() {
        let errs = check_html(&shell("<p>hops &amp volume</p>")).expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("entity")), "{errs:?}");
    }

    #[test]
    fn script_tags_are_banned() {
        let errs = check_html(&shell("<p>x</p><SCRIPT>alert(1)</SCRIPT>")).expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("script")), "{errs:?}");
    }

    #[test]
    fn svg_viewbox_mismatch_is_caught() {
        let errs = check_html(&shell(
            "<svg width=\"10\" height=\"10\" viewBox=\"0 0 10 11\"></svg>",
        ))
        .expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("viewBox")), "{errs:?}");
    }

    #[test]
    fn conservation_mismatch_is_caught() {
        let bad = "<svg width=\"10\" height=\"10\" viewBox=\"0 0 10 10\" \
                   data-routable=\"true\" data-ledger-total=\"6\" data-link-total=\"5\"></svg>";
        let errs = check_html(&shell(bad)).expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("conservation")), "{errs:?}");
        let good = bad.replace("data-link-total=\"5\"", "data-link-total=\"6\"");
        let facts = check_html(&shell(&good)).expect("valid");
        assert_eq!(facts.conserved, 1);
    }

    #[test]
    fn missing_doctype_and_tail_are_caught() {
        let errs = check_html("<html><body></body>").expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("DOCTYPE")));
        assert!(errs.iter().any(|e| e.contains("</html>")));
    }

    #[test]
    fn insane_svg_dimensions_are_caught() {
        let errs = check_html(&shell(
            "<svg width=\"200000\" height=\"10\" viewBox=\"0 0 200000 10\"></svg>",
        ))
        .expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("insane")), "{errs:?}");
    }

    fn side_svg(side: &str, routable: bool, conserved: bool) -> String {
        let totals = if routable {
            let link = if conserved { 6 } else { 5 };
            format!(" data-ledger-total=\"6\" data-link-total=\"{link}\"")
        } else {
            String::new()
        };
        format!(
            "<svg width=\"10\" height=\"10\" viewBox=\"0 0 10 10\" data-side=\"{side}\" \
             data-routable=\"{routable}\"{totals}></svg>"
        )
    }

    #[test]
    fn diff_pages_need_both_sides() {
        let one = shell(&side_svg("a", true, true));
        let errs = check_html(&one).expect_err("one-sided diff");
        assert!(errs.iter().any(|e| e.contains("only one side")), "{errs:?}");
        let both = shell(&format!(
            "{}{}",
            side_svg("a", true, true),
            side_svg("b", true, true)
        ));
        check_html(&both).expect("two-sided diff passes");
    }

    #[test]
    fn diff_pages_need_conservation_on_each_routable_side() {
        // Side b is routable but its heatmap does not conserve: the
        // per-svg conservation error fires AND the side-level rule.
        let page = shell(&format!(
            "{}{}",
            side_svg("a", true, true),
            side_svg("b", true, false)
        ));
        let errs = check_html(&page).expect_err("unconserved side");
        assert!(errs.iter().any(|e| e.contains("side b")), "{errs:?}");
        // A non-routable side (ideal machine) needs no conservation.
        let page = shell(&format!(
            "{}{}",
            side_svg("a", true, true),
            side_svg("b", false, false)
        ));
        check_html(&page).expect("non-routable side is fine");
    }

    fn cell_svg(cell: &str) -> String {
        format!("<svg width=\"10\" height=\"10\" viewBox=\"0 0 10 10\" data-cell=\"{cell}\"></svg>")
    }

    #[test]
    fn grid_pages_count_cells_against_the_legend() {
        let legend =
            "<svg width=\"10\" height=\"10\" viewBox=\"0 0 10 10\" data-grid-cells=\"2\"></svg>";
        let good = shell(&format!(
            "{legend}{}{}",
            cell_svg("w/m/0"),
            cell_svg("w/m/1")
        ));
        let facts = check_html(&good).expect("grid passes");
        assert_eq!(facts.grid_cells, 2);
        let short = shell(&format!("{legend}{}", cell_svg("w/m/0")));
        let errs = check_html(&short).expect_err("missing cell");
        assert!(errs.iter().any(|e| e.contains("declares 2")), "{errs:?}");
        let orphan = shell(&cell_svg("w/m/0"));
        let errs = check_html(&orphan).expect_err("no legend");
        assert!(errs.iter().any(|e| e.contains("no legend")), "{errs:?}");
    }

    #[test]
    fn duplicate_grid_cell_ids_are_caught() {
        let legend =
            "<svg width=\"10\" height=\"10\" viewBox=\"0 0 10 10\" data-grid-cells=\"2\"></svg>";
        let page = shell(&format!(
            "{legend}{}{}",
            cell_svg("w/m/0"),
            cell_svg("w/m/0")
        ));
        let errs = check_html(&page).expect_err("duplicate cells");
        assert!(errs.iter().any(|e| e.contains("duplicate")), "{errs:?}");
    }

    #[test]
    fn standalone_svg_is_validated() {
        let good = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"10\" height=\"10\" \
                    viewBox=\"0 0 10 10\"><text x=\"1\" y=\"1\">2 &lt; 3</text></svg>\n";
        let facts = check_svg(good).expect("valid standalone svg");
        assert_eq!(facts.svgs, 1);
        let errs = check_svg(&good.replace(" xmlns=\"http://www.w3.org/2000/svg\"", ""))
            .expect_err("missing namespace");
        assert!(errs.iter().any(|e| e.contains("namespace")), "{errs:?}");
        let errs = check_svg("<p>not an svg</p>").expect_err("not svg");
        assert!(errs.iter().any(|e| e.contains("start with")), "{errs:?}");
        let errs = check_svg(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"10\" height=\"10\" \
             viewBox=\"0 0 10 10\">a &bogus b</svg>",
        )
        .expect_err("bad entity");
        assert!(errs.iter().any(|e| e.contains("entity")), "{errs:?}");
    }
}

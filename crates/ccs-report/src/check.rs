//! Structural validator for rendered reports, shared by the
//! `report-check` binary and the crate's own tests.
//!
//! The checks are deliberately mechanical — they re-verify the
//! renderer's output contract on the artifact itself, independent of
//! the code that produced it:
//!
//! * document shell: starts with the doctype, ends with `</html>`, and
//!   contains no `<script`;
//! * markup discipline: every `<` opens a whitelisted tag (so any
//!   dynamic text must have gone through the escape helper), and every
//!   `&` starts a known entity;
//! * SVG sanity: each `<svg>` carries `width`/`height` matching its
//!   `viewBox="0 0 W H"` within sane limits;
//! * conservation: on every heatmap marked `data-routable="true"`, the
//!   embedded per-pass ledger total equals the link-load total — the
//!   hop·volume charged to edges is exactly the volume charged to
//!   links.

/// Tags the renderer is allowed to emit.  Anything else means raw text
/// leaked around the escape helper.
const TAGS: &[&str] = &[
    "html", "head", "meta", "title", "style", "body", "h1", "h2", "h3", "p", "span", "section",
    "table", "thead", "tbody", "tr", "th", "td", "details", "summary", "pre", "svg", "g", "rect",
    "text", "line",
];

/// Entities the escape helper produces.
const ENTITIES: &[&str] = &["amp;", "lt;", "gt;", "quot;", "#39;"];

/// Maximum sane SVG dimension, in px.
const MAX_DIM: u64 = 100_000;

/// What a successful validation saw, for the binary's summary line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReportFacts {
    /// `<svg>` elements validated.
    pub svgs: usize,
    /// Heatmaps whose ledger/link conservation was checked.
    pub conserved: usize,
    /// `<section>` elements seen.
    pub sections: usize,
}

fn attr<'a>(tag: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("{key}=\"");
    let start = tag.find(&pat)? + pat.len();
    let end = tag[start..].find('"')?;
    Some(&tag[start..start + end])
}

fn check_svg_tag(tag: &str, errors: &mut Vec<String>, facts: &mut ReportFacts) {
    facts.svgs += 1;
    let n = facts.svgs;
    let (Some(w), Some(h), Some(vb)) = (
        attr(tag, "width"),
        attr(tag, "height"),
        attr(tag, "viewBox"),
    ) else {
        errors.push(format!("svg #{n}: missing width/height/viewBox"));
        return;
    };
    let (Ok(wn), Ok(hn)) = (w.parse::<u64>(), h.parse::<u64>()) else {
        errors.push(format!("svg #{n}: non-numeric dimensions {w}x{h}"));
        return;
    };
    if !(1..=MAX_DIM).contains(&wn) || !(1..=MAX_DIM).contains(&hn) {
        errors.push(format!("svg #{n}: insane dimensions {wn}x{hn}"));
    }
    if vb != format!("0 0 {w} {h}") {
        errors.push(format!(
            "svg #{n}: viewBox \"{vb}\" disagrees with width/height {w}x{h}"
        ));
    }
    if attr(tag, "data-routable") == Some("true") {
        match (attr(tag, "data-ledger-total"), attr(tag, "data-link-total")) {
            (Some(ledger), Some(link)) => {
                if ledger != link {
                    errors.push(format!(
                        "svg #{n}: conservation violated — ledger total {ledger} != link total {link}"
                    ));
                } else {
                    facts.conserved += 1;
                }
            }
            _ => errors.push(format!(
                "svg #{n}: routable heatmap without conservation totals"
            )),
        }
    }
}

fn scan_markup(html: &str, errors: &mut Vec<String>, facts: &mut ReportFacts) {
    let bytes = html.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => {
                let rest = &html[i + 1..];
                let name: String = rest
                    .trim_start_matches('/')
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric())
                    .collect();
                if rest.starts_with("!DOCTYPE") || rest.starts_with("!--") {
                    // the shell's doctype (comments never emitted, but legal)
                } else if name.is_empty() || !TAGS.contains(&name.to_ascii_lowercase().as_str()) {
                    errors.push(format!(
                        "offset {i}: '<' does not open a whitelisted tag (saw {:?})",
                        &rest.chars().take(12).collect::<String>()
                    ));
                } else if name == "svg" && !rest.starts_with('/') {
                    let end = rest.find('>').unwrap_or(rest.len());
                    check_svg_tag(&rest[..end], errors, facts);
                } else if name == "section" && !rest.starts_with('/') {
                    facts.sections += 1;
                }
                i += 1;
            }
            b'&' => {
                let rest = &html[i + 1..];
                if !ENTITIES.iter().any(|e| rest.starts_with(e)) {
                    errors.push(format!(
                        "offset {i}: '&' does not start a known entity (saw {:?})",
                        &rest.chars().take(8).collect::<String>()
                    ));
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Validates one rendered report.  Returns the facts on success, or
/// every violation found (never just the first) on failure.
pub fn check_html(html: &str) -> Result<ReportFacts, Vec<String>> {
    let mut errors = Vec::new();
    let mut facts = ReportFacts::default();
    if !html.starts_with("<!DOCTYPE html>") {
        errors.push("document does not start with <!DOCTYPE html>".to_string());
    }
    if !html.trim_end().ends_with("</html>") {
        errors.push("document does not end with </html>".to_string());
    }
    if html.to_ascii_lowercase().contains("<script") {
        errors.push("document contains a <script> tag".to_string());
    }
    scan_markup(html, &mut errors, &mut facts);
    if errors.is_empty() {
        Ok(facts)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell(body: &str) -> String {
        format!("<!DOCTYPE html>\n<html lang=\"en\"><body>{body}</body></html>\n")
    }

    #[test]
    fn a_clean_document_passes() {
        let facts = check_html(&shell(
            "<section id=\"a\"><p>2 &lt; 3 &amp; 4 &gt; 1 &quot;x&quot; &#39;y&#39;</p></section>",
        ))
        .expect("valid");
        assert_eq!(facts.sections, 1);
        assert_eq!(facts.svgs, 0);
    }

    #[test]
    fn unescaped_angle_bracket_is_caught() {
        let errs = check_html(&shell("<p>a <bogus> b</p>")).expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("whitelisted")), "{errs:?}");
    }

    #[test]
    fn bare_ampersand_is_caught() {
        let errs = check_html(&shell("<p>hops &amp volume</p>")).expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("entity")), "{errs:?}");
    }

    #[test]
    fn script_tags_are_banned() {
        let errs = check_html(&shell("<p>x</p><SCRIPT>alert(1)</SCRIPT>")).expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("script")), "{errs:?}");
    }

    #[test]
    fn svg_viewbox_mismatch_is_caught() {
        let errs = check_html(&shell(
            "<svg width=\"10\" height=\"10\" viewBox=\"0 0 10 11\"></svg>",
        ))
        .expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("viewBox")), "{errs:?}");
    }

    #[test]
    fn conservation_mismatch_is_caught() {
        let bad = "<svg width=\"10\" height=\"10\" viewBox=\"0 0 10 10\" \
                   data-routable=\"true\" data-ledger-total=\"6\" data-link-total=\"5\"></svg>";
        let errs = check_html(&shell(bad)).expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("conservation")), "{errs:?}");
        let good = bad.replace("data-link-total=\"5\"", "data-link-total=\"6\"");
        let facts = check_html(&shell(&good)).expect("valid");
        assert_eq!(facts.conserved, 1);
    }

    #[test]
    fn missing_doctype_and_tail_are_caught() {
        let errs = check_html("<html><body></body>").expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("DOCTYPE")));
        assert!(errs.iter().any(|e| e.contains("</html>")));
    }

    #[test]
    fn insane_svg_dimensions_are_caught() {
        let errs = check_html(&shell(
            "<svg width=\"200000\" height=\"10\" viewBox=\"0 0 200000 10\"></svg>",
        ))
        .expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("insane")), "{errs:?}");
    }
}

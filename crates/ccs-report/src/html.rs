//! Document skeleton for the report: the (single, audited) escape
//! helper, the embedded stylesheet, and the outer HTML shell.
//!
//! Everything the report interpolates into content position must pass
//! through [`esc`] — the `escaped-html-output` lint enforces exactly
//! that over this crate, and `report-check` re-verifies the rendered
//! artifact (every `<` opens a whitelisted tag, every `&` a known
//! entity).

pub use ccs_profile::render::esc;

/// The report's embedded stylesheet.  Plain ASCII, no `<` and no `&`,
/// so it survives the `report-check` markup scan untouched.
pub const STYLE: &str = "\
body{font:14px/1.45 system-ui,sans-serif;color:#222;margin:24px;max-width:1100px}
h1{font-size:20px;margin-bottom:4px}
h2{font-size:16px;border-bottom:1px solid #ddd;padding-bottom:4px;margin-top:28px}
h3{font-size:13px;margin:14px 0 4px}
p.meta{color:#555;margin-top:0}
table{border-collapse:collapse;margin:8px 0}
th,td{border:1px solid #ccc;padding:2px 8px;text-align:right;font-variant-numeric:tabular-nums}
th{background:#f3f3f3}
th.l,td.l{text-align:left}
tr.binding td{background:#fff7e0;font-weight:600}
svg{display:block;margin:10px 0}
svg.gantt .g-cap{font:12px sans-serif;fill:#222}
svg.gantt .g-ax{font:9px monospace;fill:#666}
svg.gantt .g-lbl{font:10px monospace;fill:#fff}
svg.gantt .g-rect{fill:#4a7ab5;stroke:#2c4a70;stroke-width:0.5}
svg.gantt .g-rot{fill:#e07b39;stroke:#8f4a1d;stroke-width:0.5}
svg.gantt .g-grid{stroke:#eee;stroke-width:1}
span.accepted{color:#0a7d32;font-weight:600}
span.reverted{color:#b30000;font-weight:600}
pre{background:#f7f7f7;padding:8px;overflow-x:auto;font-size:12px}
details{margin:8px 0}
summary{cursor:pointer;color:#444}
div.cols{display:flex;gap:24px;flex-wrap:wrap;align-items:flex-start}
div.cols div.col{flex:1 1 420px;min-width:0}
tr.diverge td{background:#ffe3e3}
div.grid{display:flex;gap:16px;flex-wrap:wrap;align-items:flex-start}
div.tile{border:1px solid #ccc;border-radius:4px;padding:8px;background:#fafafa}
div.tile p.tile-head{margin:0 0 4px;font:600 12px monospace}
div.tile p.tile-gap{margin:0;font:11px monospace;color:#333;padding:1px 4px}
";

/// Wraps the four panel bodies in the self-contained document shell.
///
/// `title` and `meta` are caller text and are escaped here; `sections`
/// are pre-rendered `(id, heading, body)` triples whose bodies must
/// already be fully escaped by their renderers.
pub fn document(title: &str, meta: &str, sections: &[(&str, &str, String)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(out, "<title>{}</title>", esc(title));
    out.push_str("<style>\n");
    out.push_str(STYLE);
    out.push_str("</style>\n</head>\n<body>\n");
    let _ = writeln!(out, "<h1>{}</h1>", esc(title));
    let _ = writeln!(out, "<p class=\"meta\">{}</p>", esc(meta));
    for (id, heading, body) in sections {
        let _ = writeln!(out, "<section id=\"{}\">", esc(id));
        let _ = writeln!(out, "<h2>{}</h2>", esc(heading));
        out.push_str(body);
        out.push_str("</section>\n");
    }
    out.push_str("</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_escapes_title_and_meta() {
        let html = document("<fig1> & friends", "2 < 3", &[]);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.trim_end().ends_with("</html>"));
        assert!(html.contains("<title>&lt;fig1&gt; &amp; friends</title>"));
        assert!(html.contains("<p class=\"meta\">2 &lt; 3</p>"));
        assert!(!html.contains("<fig1>"));
    }

    #[test]
    fn style_is_markup_safe() {
        assert!(!STYLE.contains('<'));
        assert!(!STYLE.contains('&'));
        assert!(STYLE.is_ascii());
    }

    #[test]
    fn sections_carry_ids_in_order() {
        let html = document(
            "t",
            "m",
            &[
                ("schedule", "Schedule", "<p>a</p>\n".to_string()),
                ("certificate", "Certificate", "<p>b</p>\n".to_string()),
            ],
        );
        let a = html.find("<section id=\"schedule\">").expect("schedule");
        let b = html
            .find("<section id=\"certificate\">")
            .expect("certificate");
        assert!(a < b);
    }
}

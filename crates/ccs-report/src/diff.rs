//! Multi-run diff report: two recorded runs of the *same workload* on
//! different machines (or scheduler policies), folded into one page.
//!
//! Panel anatomy (`cyclosched schedule --report-diff`):
//!
//! 1. `#schedule` — side-by-side start-up Gantts and pass-outcome
//!    tables, with the first pass whose rotation set differs between
//!    the runs highlighted on both sides (rows from the divergence
//!    point onward carry `tr.diverge`).
//! 2. `#heatmaps` — each side's final link-load heatmap (tagged
//!    `data-side="a"`/`"b"` so `report-check` can demand conservation
//!    on *both* sides), plus a signed per-link delta heatmap.
//! 3. `#ledger` — the edge-ledger delta table: top movers by `|Δcost|`
//!    with each side's route rendered against its own machine's
//!    routing table, edges only one side charged listed separately,
//!    and a stable "no movement" row when the ledgers agree.
//! 4. `#certificate` — both runs graded against their `ccs-bounds`
//!    floors in one comparison table.
//!
//! Same determinism contract as the single-run report: pure function
//! of the inputs, no wall-clock content, every interpolation through
//! [`crate::html::esc`].

use crate::fold::{self, RunStory};
use crate::html::{self, esc};
use crate::{gantt_svg, ledger_comm, names_of, phase_label, Bar, DIFF_TOP_K};
use ccs_bounds::OptimalityReport;
use ccs_profile::render::{delta_heatmap_svg, heatmap_panel, PanelOptions};
use ccs_profile::{diff_ledgers, one_sided_edges, routable, route_label, CommProfile, EdgeTraffic};
use ccs_topology::{Machine, RoutingTable};
use ccs_trace::TimedEvent;
use std::fmt::Write as _;

/// One run of the comparison, borrowed from the caller.
pub struct DiffSide<'a> {
    /// Short run label ("mesh:2x2", "complete:4 (reference scan)", …).
    pub label: &'a str,
    /// The recorded event stream of this run.
    pub events: &'a [TimedEvent],
    /// The machine this run targeted.
    pub machine: &'a Machine,
    /// The communication profile folded from the same events.
    pub profile: &'a CommProfile,
    /// The optimality certificate for the achieved period, if graded.
    pub certificate: Option<&'a OptimalityReport>,
}

/// Everything one diff report needs.
pub struct DiffInput<'a> {
    /// Report title (workload + the two specs, typically).
    pub title: &'a str,
    /// Side A (the baseline run).
    pub a: DiffSide<'a>,
    /// Side B (the comparison run).
    pub b: DiffSide<'a>,
}

/// First pass number whose rotation set differs between the runs, if
/// any: the point where the two schedules stop telling the same story.
fn divergence_pass(a: &RunStory, b: &RunStory) -> Option<u32> {
    let len = a.passes.len().max(b.passes.len());
    for i in 0..len {
        match (a.passes.get(i), b.passes.get(i)) {
            (Some(pa), Some(pb)) => {
                if pa.rotated != pb.rotated {
                    return Some(pa.pass.min(pb.pass));
                }
            }
            (Some(p), None) | (None, Some(p)) => return Some(p.pass),
            (None, None) => unreachable!("index below max of both lengths"),
        }
    }
    None
}

/// One side's column of the schedule panel: the start-up Gantt plus a
/// pass-outcome table with rows highlighted from the divergence point.
fn side_schedule(
    side: &DiffSide<'_>,
    story: &RunStory,
    diverge: Option<u32>,
    mut name: impl FnMut(u32) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "<h3>{}</h3>", esc(side.label));
    let bars: Vec<Bar> = story
        .startup
        .iter()
        .map(|s| {
            let n = name(s.node);
            Bar {
                pe: s.pe,
                cs: s.cs,
                duration: s.duration,
                rotated: false,
                title: format!(
                    "{} -> PE{}, cs {}..{}",
                    n,
                    s.pe + 1,
                    s.cs,
                    s.cs + s.duration
                ),
                label: n,
            }
        })
        .collect();
    out.push_str(&gantt_svg(
        &format!("start-up (pass 0): length {}", story.startup_length),
        story.pes,
        story.startup_length,
        &bars,
    ));
    out.push_str(
        "<table>\n<thead><tr><th>pass</th><th class=\"l\">outcome</th><th>length</th>\
         <th class=\"l\">rotated J</th></tr></thead>\n<tbody>\n",
    );
    for p in &story.passes {
        let outcome = if p.accepted {
            "<span class=\"accepted\">accepted</span>"
        } else {
            "<span class=\"reverted\">reverted</span>"
        };
        let cls = if diverge.is_some_and(|d| p.pass >= d) {
            " class=\"diverge\""
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "<tr{cls}><td>{}</td><td class=\"l\">{outcome}</td><td>{}</td>\
             <td class=\"l\">{{{}}}</td></tr>",
            esc(&p.pass.to_string()),
            esc(&p.length.to_string()),
            esc(&names_of(&p.rotated, &mut name))
        );
    }
    out.push_str("</tbody>\n</table>\n");
    let _ = writeln!(
        out,
        "<p>best length {} after {} pass(es)</p>",
        esc(&story.best_length.to_string()),
        esc(&story.passes_run.to_string())
    );
    out
}

fn schedule_section(
    input: &DiffInput<'_>,
    sa: &RunStory,
    sb: &RunStory,
    mut name: impl FnMut(u32) -> String,
) -> String {
    let diverge = divergence_pass(sa, sb);
    let mut out = String::new();
    match diverge {
        Some(d) => {
            let _ = writeln!(
                out,
                "<p>runs diverge at {}: first pass whose rotation set differs \
                 (highlighted below)</p>",
                esc(&phase_label(d))
            );
        }
        None => out.push_str("<p>the runs rotate identical node sets in every pass</p>\n"),
    }
    out.push_str("<div class=\"cols\">\n<div class=\"col\">\n");
    out.push_str(&side_schedule(&input.a, sa, diverge, &mut name));
    out.push_str("</div>\n<div class=\"col\">\n");
    out.push_str(&side_schedule(&input.b, sb, diverge, &mut name));
    out.push_str("</div>\n</div>\n");
    out
}

fn side_heatmap(side: &DiffSide<'_>, tag: &str) -> String {
    heatmap_panel(
        &format!(
            "{} — final best schedule: comm {}, length {} -> {}",
            side.label,
            side.profile.total_comm,
            side.profile.initial_length,
            side.profile.best_length
        ),
        side.profile.pes,
        &side.profile.edges,
        &side.profile.links,
        PanelOptions {
            routable: routable(side.machine),
            side: Some(tag),
            ..PanelOptions::default()
        },
    )
}

fn heatmaps_section(input: &DiffInput<'_>) -> String {
    let mut out = String::new();
    out.push_str("<div class=\"cols\">\n<div class=\"col\">\n");
    out.push_str(&side_heatmap(&input.a, "a"));
    out.push_str("</div>\n<div class=\"col\">\n");
    out.push_str(&side_heatmap(&input.b, "b"));
    out.push_str("</div>\n</div>\n");
    out.push_str(&delta_heatmap_svg(
        "link-load delta (B minus A)",
        input.a.profile.pes.max(input.b.profile.pes),
        &input.a.profile.edges,
        &input.b.profile.edges,
        &input.a.profile.links,
        &input.b.profile.links,
    ));
    out
}

fn one_sided_list(out: &mut String, label: &str, edges: &[EdgeTraffic]) {
    if edges.is_empty() {
        return;
    }
    let rows: Vec<String> = edges
        .iter()
        .map(|e| format!("e{} (cost {})", e.edge, e.cost()))
        .collect();
    let _ = writeln!(
        out,
        "<p>{} only: {} — no counterpart to diff against</p>",
        esc(label),
        esc(&rows.join(", "))
    );
}

fn ledger_section(input: &DiffInput<'_>, mut name: impl FnMut(u32) -> String) -> String {
    let (ea, eb) = (&input.a.profile.edges, &input.b.profile.edges);
    let deltas = diff_ledgers(ea, eb);
    let (lone_a, lone_b) = one_sided_edges(ea, eb);
    let routes_a = routable(input.a.machine).then(|| RoutingTable::new(input.a.machine));
    let routes_b = routable(input.b.machine).then(|| RoutingTable::new(input.b.machine));
    let (ca, cb) = (ledger_comm(ea), ledger_comm(eb));
    let shift = i64::try_from(cb).unwrap_or(i64::MAX) - i64::try_from(ca).unwrap_or(i64::MAX);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<p>final best-schedule comm: A {} / B {} ({}), {} shared edge(s) moved</p>",
        esc(&ca.to_string()),
        esc(&cb.to_string()),
        esc(&format!("{shift:+}")),
        esc(&deltas.len().to_string())
    );
    out.push_str(
        "<table>\n<thead><tr><th class=\"l\">edge</th><th class=\"l\">route A</th>\
         <th>cost A</th><th class=\"l\">route B</th><th>cost B</th><th>shift</th>\
         </tr></thead>\n<tbody>\n",
    );
    if deltas.is_empty() {
        out.push_str(
            "<tr><td class=\"l\">no movement</td><td class=\"l\">-</td><td>-</td>\
             <td class=\"l\">-</td><td>-</td><td>+0</td></tr>\n",
        );
    }
    for d in deltas.iter().take(DIFF_TOP_K) {
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td class=\"l\">{}</td><td>{}</td>\
             <td class=\"l\">{}</td><td>{}</td><td>{}</td></tr>",
            esc(&format!(
                "e{} {}->{}",
                d.after.edge,
                name(d.after.src),
                name(d.after.dst)
            )),
            esc(&route_label(routes_a.as_ref(), &d.before)),
            esc(&d.before.cost().to_string()),
            esc(&route_label(routes_b.as_ref(), &d.after)),
            esc(&d.after.cost().to_string()),
            esc(&format!("{:+}", d.delta()))
        );
    }
    out.push_str("</tbody>\n</table>\n");
    if deltas.len() > DIFF_TOP_K {
        let _ = writeln!(
            out,
            "<p>({} more changed edge(s) not shown)</p>",
            esc(&(deltas.len() - DIFF_TOP_K).to_string())
        );
    }
    one_sided_list(&mut out, "A", &lone_a);
    one_sided_list(&mut out, "B", &lone_b);
    out
}

fn cert_cell(c: Option<&OptimalityReport>) -> [String; 5] {
    match c {
        Some(r) => [
            r.period.to_string(),
            r.bounds.best_value().to_string(),
            r.verdict.name().to_string(),
            format!("{:+}", r.gap),
            format!("{:.1}%", r.gap_pct),
        ],
        None => std::array::from_fn(|_| "-".to_string()),
    }
}

fn certificate_section(input: &DiffInput<'_>) -> String {
    let mut out = String::new();
    if input.a.certificate.is_none() && input.b.certificate.is_none() {
        out.push_str("<p>no certificate was computed for either run</p>\n");
        return out;
    }
    let a = cert_cell(input.a.certificate);
    let b = cert_cell(input.b.certificate);
    out.push_str(
        "<table>\n<thead><tr><th class=\"l\">run</th><th>period</th><th>strongest floor</th>\
         <th class=\"l\">verdict</th><th>gap</th><th>gap %</th></tr></thead>\n<tbody>\n",
    );
    for (label, row) in [(input.a.label, &a), (input.b.label, &b)] {
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td>\
             <td class=\"l\">{}</td><td>{}</td><td>{}</td></tr>",
            esc(label),
            esc(&row[0]),
            esc(&row[1]),
            esc(&row[2]),
            esc(&row[3]),
            esc(&row[4])
        );
    }
    out.push_str("</tbody>\n</table>\n");
    out
}

/// Renders the complete two-run comparison document.  `name` resolves
/// node indices to human names; both runs schedule the same workload,
/// so one resolver serves both sides.
pub fn render_diff_report(input: &DiffInput<'_>, mut name: impl FnMut(u32) -> String) -> String {
    let sa = fold::fold(input.a.events);
    let sb = fold::fold(input.b.events);
    let meta = format!(
        "A = {} ({}): best {}; B = {} ({}): best {} — {} task(s)",
        input.a.label,
        input.a.machine.name(),
        sa.best_length,
        input.b.label,
        input.b.machine.name(),
        sb.best_length,
        sa.tasks
    );
    let sections = [
        (
            "schedule",
            "Schedule: start-up placements and pass outcomes, side by side",
            schedule_section(input, &sa, &sb, &mut name),
        ),
        (
            "heatmaps",
            "Link-load heatmaps: final best schedules and their delta",
            heatmaps_section(input),
        ),
        (
            "ledger",
            "Edge-ledger delta: top movers between the runs",
            ledger_section(input, &mut name),
        ),
        (
            "certificate",
            "Optimality certificates, graded side by side",
            certificate_section(input),
        ),
    ];
    html::document(input.title, &meta, &sections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_trace::Event;

    fn te(event: Event) -> TimedEvent {
        TimedEvent { ns: 0, event }
    }

    fn run_events(best: u32, rotate_node: u32) -> Vec<TimedEvent> {
        vec![
            te(Event::StartupBegin { tasks: 2, pes: 2 }),
            te(Event::StartupPlace {
                node: 0,
                pe: 0,
                cs: 0,
                duration: 1,
            }),
            te(Event::StartupPlace {
                node: 1,
                pe: 1,
                cs: 1,
                duration: 1,
            }),
            te(Event::EdgeTraffic {
                edge: 0,
                src: 0,
                dst: 1,
                src_pe: 0,
                dst_pe: 1,
                hops: 1,
                volume: 2,
            }),
            te(Event::StartupEnd { length: 3 }),
            te(Event::PassBegin {
                pass: 1,
                prev_len: 3,
                rows: 1,
            }),
            te(Event::Rotate {
                nodes: vec![rotate_node],
            }),
            te(Event::EdgeTraffic {
                edge: 0,
                src: 0,
                dst: 1,
                src_pe: 0,
                dst_pe: 0,
                hops: 0,
                volume: 2,
            }),
            te(Event::PassEnd {
                pass: 1,
                accepted: true,
                length: best,
            }),
            te(Event::EdgeTraffic {
                edge: 0,
                src: 0,
                dst: 1,
                src_pe: 0,
                dst_pe: 0,
                hops: 0,
                volume: 2,
            }),
            te(Event::CompactEnd {
                initial: 3,
                best,
                passes: 1,
            }),
        ]
    }

    fn page(rotate_b: u32) -> String {
        let ma = Machine::linear_array(2);
        let mb = Machine::ring(2);
        let ea = run_events(2, 0);
        let eb = run_events(3, rotate_b);
        let pa = ccs_profile::build(&ea, &ma);
        let pb = ccs_profile::build(&eb, &mb);
        render_diff_report(
            &DiffInput {
                title: "tiny: line2 vs ring2",
                a: DiffSide {
                    label: "linear:2",
                    events: &ea,
                    machine: &ma,
                    profile: &pa,
                    certificate: None,
                },
                b: DiffSide {
                    label: "ring:2",
                    events: &eb,
                    machine: &mb,
                    profile: &pb,
                    certificate: None,
                },
            },
            |n| format!("n{n}"),
        )
    }

    #[test]
    fn diff_page_has_both_sides_and_passes_check() {
        let html = page(1);
        assert!(html.contains("data-side=\"a\""), "{html}");
        assert!(html.contains("data-side=\"b\""), "{html}");
        assert!(html.contains("data-side=\"delta\""), "{html}");
        assert!(html.contains("runs diverge at pass 1"), "{html}");
        assert!(html.contains("class=\"diverge\""), "{html}");
        crate::check::check_html(&html).expect("diff page passes report-check");
    }

    #[test]
    fn identical_rotations_report_no_divergence() {
        let html = page(0);
        assert!(html.contains("identical node sets"), "{html}");
        assert!(!html.contains("class=\"diverge\""), "{html}");
        // Identical ledgers: the delta table still renders one stable row.
        assert!(html.contains("no movement"), "{html}");
        crate::check::check_html(&html).expect("valid");
    }

    #[test]
    fn diff_page_is_deterministic() {
        assert_eq!(page(1), page(1));
    }
}

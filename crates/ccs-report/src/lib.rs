//! Deterministic single-file HTML/SVG flight recorder for one
//! cyclo-compaction scheduling run.
//!
//! [`render_report`] folds a recorded `ccs-trace` event stream plus
//! the run's [`CommProfile`] and (optionally) its `ccs-bounds`
//! optimality certificate into one self-contained HTML document with
//! four panels:
//!
//! 1. `#schedule` — a start-up Gantt SVG and one strip per accepted
//!    rotate-remap pass showing the rotated nodes' new placements,
//!    with hover titles naming the candidate scan's `AN`-window
//!    verdicts for every PE considered.
//! 2. `#heatmaps` — a link-load heatmap SVG per accepted phase,
//!    rendered from that phase's edge ledger.
//! 3. `#trajectory` — the pass trajectory table (length, comm/compute
//!    balance) and per-pass ledger diffs: which edges' hop·volume
//!    moved, where, and by how much.
//! 4. `#certificate` — the schedule graded against the proven period
//!    floors, witnesses inline.
//!
//! Everything is a pure function of the inputs: no wall-clock content,
//! no randomness, byte-identical across thread counts.  All dynamic
//! text passes through the one audited [`html::esc`] helper; the
//! rendered artifact is re-validated by `report-check`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod check;
pub mod diff;
pub mod fold;
pub mod grid;
pub mod html;

use ccs_bounds::{OptimalityReport, Verdict as BoundsVerdict, Witness};
use ccs_profile::render::heatmap_svg_panel;
use ccs_profile::{diff_ledgers, link_loads, routable, route_label, CommProfile, EdgeTraffic};
use ccs_topology::{Machine, RoutingTable};
use ccs_trace::TimedEvent;
use fold::{PassStory, Remap, RunStory};
use html::esc;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Ledger-diff rows shown per pass in the trajectory panel.
pub const DIFF_TOP_K: usize = 8;

/// Everything one report needs, borrowed from the caller.
pub struct ReportInput<'a> {
    /// Report title (workload + machine, typically).
    pub title: &'a str,
    /// The recorded event stream of the run.
    pub events: &'a [TimedEvent],
    /// The machine the run targeted.
    pub machine: &'a Machine,
    /// The communication profile folded from the same events.
    pub profile: &'a CommProfile,
    /// The optimality certificate for the achieved period, if graded.
    pub certificate: Option<&'a OptimalityReport>,
}

/// Gantt geometry: control-step cell width, PE row height, margins.
const CW: u32 = 16;
const RH: u32 = 18;
const G_LEFT: u32 = 44;
const G_TOP: u32 = 24;

/// One bar of a Gantt strip.
struct Bar {
    pe: u32,
    cs: u32,
    duration: u32,
    rotated: bool,
    label: String,
    title: String,
}

fn gantt_svg(caption: &str, pes: u32, length: u32, bars: &[Bar]) -> String {
    let length = length.max(1);
    let width = G_LEFT + length * CW + 8;
    let height = G_TOP + pes.max(1) * RH + 6;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg class=\"gantt\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\" role=\"img\">"
    );
    let _ = writeln!(
        out,
        "<text class=\"g-cap\" x=\"4\" y=\"14\">{}</text>",
        esc(caption)
    );
    // Control-step grid and axis labels (thinned on long schedules).
    let tick = (length / 12).max(1);
    for cs in 0..=length {
        let x = G_LEFT + cs * CW;
        let _ = writeln!(
            out,
            "<line class=\"g-grid\" x1=\"{x}\" y1=\"{G_TOP}\" x2=\"{x}\" y2=\"{}\"/>",
            G_TOP + pes * RH
        );
        if cs % tick == 0 && cs < length {
            let _ = writeln!(
                out,
                "<text class=\"g-ax\" x=\"{}\" y=\"{}\">{}</text>",
                x + 2,
                G_TOP - 4,
                esc(&cs.to_string())
            );
        }
    }
    for pe in 0..pes {
        let _ = writeln!(
            out,
            "<text class=\"g-ax\" x=\"2\" y=\"{}\">{}</text>",
            G_TOP + pe * RH + 12,
            esc(&format!("PE{}", pe + 1))
        );
    }
    for b in bars {
        let x = G_LEFT + b.cs * CW;
        let y = G_TOP + b.pe * RH + 2;
        let w = (b.duration.max(1) * CW).saturating_sub(1).max(2);
        let class = if b.rotated { "g-rot" } else { "g-rect" };
        let _ = writeln!(
            out,
            "<rect class=\"{class}\" x=\"{x}\" y=\"{y}\" width=\"{w}\" height=\"{}\">\
             <title>{}</title></rect>",
            RH - 4,
            esc(&b.title)
        );
        if w >= 18 {
            let _ = writeln!(
                out,
                "<text class=\"g-lbl\" x=\"{}\" y=\"{}\">{}</text>",
                x + 3,
                y + 11,
                esc(&b.label)
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

fn remap_title(r: &Remap, mut name: impl FnMut(u32) -> String) -> String {
    let mut t = format!(
        "{} -> PE{}, cs {}..{} (target {}, impact {}, comm {})",
        name(r.node),
        r.pe + 1,
        r.cs,
        r.cs + r.duration,
        r.target,
        r.impact,
        r.comm
    );
    if let Some(ru) = &r.runner_up {
        let _ = write!(t, "\nrunner-up: {ru}");
    }
    if !r.candidates.is_empty() {
        t.push_str("\ncandidate scan (AN windows):");
        for c in &r.candidates {
            let _ = write!(
                t,
                "\n  PE{}: window [{}, {}], comm {} -> {}",
                c.pe + 1,
                c.lb,
                c.ub,
                c.comm,
                c.verdict
            );
        }
    }
    t
}

fn names_of(nodes: &[u32], mut name: impl FnMut(u32) -> String) -> String {
    let v: Vec<String> = nodes.iter().map(|&n| name(n)).collect();
    v.join(", ")
}

fn schedule_section(story: &RunStory, mut name: impl FnMut(u32) -> String) -> String {
    let mut out = String::new();
    let rotated_ever: BTreeSet<u32> = story
        .passes
        .iter()
        .flat_map(|p| p.rotated.iter().copied())
        .collect();
    let bars: Vec<Bar> = story
        .startup
        .iter()
        .map(|s| {
            let n = name(s.node);
            let mut title = format!(
                "{} -> PE{}, cs {}..{}",
                n,
                s.pe + 1,
                s.cs,
                s.cs + s.duration
            );
            let rotated = rotated_ever.contains(&s.node);
            if rotated {
                title.push_str("\nrotated during compaction");
            }
            Bar {
                pe: s.pe,
                cs: s.cs,
                duration: s.duration,
                rotated,
                label: n,
                title,
            }
        })
        .collect();
    out.push_str(&gantt_svg(
        &format!(
            "start-up schedule (pass 0): length {}",
            story.startup_length
        ),
        story.pes,
        story.startup_length,
        &bars,
    ));
    for p in &story.passes {
        if p.accepted {
            out.push_str(&pass_strip(p, story.pes, &mut name));
        } else {
            let _ = writeln!(
                out,
                "<p>pass {} <span class=\"reverted\">reverted</span>: \
                 length would be {}, rotated J = {{{}}} rolled back</p>",
                esc(&p.pass.to_string()),
                esc(&p.length.to_string()),
                esc(&names_of(&p.rotated, &mut name))
            );
        }
    }
    out
}

fn pass_strip(p: &PassStory, pes: u32, mut name: impl FnMut(u32) -> String) -> String {
    let bars: Vec<Bar> = p
        .remaps
        .iter()
        .map(|r| Bar {
            pe: r.pe,
            cs: r.cs,
            duration: r.duration,
            rotated: true,
            label: name(r.node),
            title: remap_title(r, &mut name),
        })
        .collect();
    let span = bars
        .iter()
        .map(|b| b.cs + b.duration)
        .max()
        .unwrap_or(0)
        .max(p.length);
    let mut caption = format!(
        "pass {} accepted: length {} -> {}, rotated J = {{{}}}",
        p.pass,
        p.prev_len,
        p.length,
        names_of(&p.rotated, &mut name)
    );
    if p.no_slots > 0 {
        let _ = write!(
            caption,
            " ({} failed attempt(s) retried longer)",
            p.no_slots
        );
    }
    gantt_svg(&caption, pes, span, &bars)
}

fn ledger_comm(edges: &[EdgeTraffic]) -> u64 {
    edges
        .iter()
        .map(|e| e.cost())
        .fold(0u64, u64::saturating_add)
}

fn phase_label(pass: u32) -> String {
    if pass == 0 {
        "start-up (pass 0)".to_string()
    } else {
        format!("pass {pass}")
    }
}

fn heatmaps_section(profile: &CommProfile, machine: &Machine) -> String {
    let mut out = String::new();
    if profile.pass_ledgers.is_empty() {
        out.push_str("<p>no accepted phases recorded</p>\n");
        return out;
    }
    let can_route = routable(machine);
    for l in &profile.pass_ledgers {
        let caption = format!(
            "{}: length {}, comm {}",
            phase_label(l.pass),
            l.length,
            ledger_comm(&l.edges)
        );
        let loads = link_loads(machine, &l.edges);
        out.push_str(&heatmap_svg_panel(
            &caption,
            profile.pes,
            &l.edges,
            &loads,
            can_route,
            false,
        ));
    }
    out
}

fn trajectory_section(
    profile: &CommProfile,
    machine: &Machine,
    mut name: impl FnMut(u32) -> String,
) -> String {
    let mut out = String::new();
    out.push_str(
        "<table>\n<thead><tr><th class=\"l\">phase</th><th class=\"l\">outcome</th>\
         <th>length</th><th>comm</th><th>crossing</th><th>local</th></tr></thead>\n<tbody>\n",
    );
    for p in &profile.passes {
        let outcome = if p.accepted {
            "<span class=\"accepted\">accepted</span>"
        } else {
            "<span class=\"reverted\">reverted</span>"
        };
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td class=\"l\">{outcome}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td></tr>",
            esc(&phase_label(p.pass)),
            esc(&p.length.to_string()),
            esc(&p.comm.to_string()),
            esc(&p.crossing.to_string()),
            esc(&p.local.to_string())
        );
    }
    out.push_str("</tbody>\n</table>\n");
    let _ = writeln!(
        out,
        "<p>compute {} cells, best-schedule comm {} (hop-weighted)</p>",
        esc(&profile.compute.to_string()),
        esc(&profile.total_comm.to_string())
    );

    let routes = routable(machine).then(|| RoutingTable::new(machine));
    for pair in profile.pass_ledgers.windows(2) {
        let (prev, cur) = (&pair[0], &pair[1]);
        let deltas = diff_ledgers(&prev.edges, &cur.edges);
        let (a, b) = (ledger_comm(&prev.edges), ledger_comm(&cur.edges));
        let shift = i64::try_from(b).unwrap_or(i64::MAX) - i64::try_from(a).unwrap_or(i64::MAX);
        let _ = writeln!(
            out,
            "<h3>ledger diff: {} -> {}</h3>",
            esc(&phase_label(prev.pass)),
            esc(&phase_label(cur.pass))
        );
        let _ = writeln!(
            out,
            "<p>comm {} -> {} ({}), {} of {} edge(s) moved</p>",
            esc(&a.to_string()),
            esc(&b.to_string()),
            esc(&format!("{shift:+}")),
            esc(&deltas.len().to_string()),
            esc(&cur.edges.len().to_string())
        );
        if deltas.is_empty() {
            continue;
        }
        out.push_str(
            "<table>\n<thead><tr><th class=\"l\">edge</th><th class=\"l\">route before</th>\
             <th class=\"l\">route after</th><th>cost before</th><th>cost after</th>\
             <th>shift</th></tr></thead>\n<tbody>\n",
        );
        for d in deltas.iter().take(DIFF_TOP_K) {
            let _ = writeln!(
                out,
                "<tr><td class=\"l\">{}</td><td class=\"l\">{}</td><td class=\"l\">{}</td>\
                 <td>{}</td><td>{}</td><td>{}</td></tr>",
                esc(&format!(
                    "e{} {}->{}",
                    d.after.edge,
                    name(d.after.src),
                    name(d.after.dst)
                )),
                esc(&route_label(routes.as_ref(), &d.before)),
                esc(&route_label(routes.as_ref(), &d.after)),
                esc(&d.before.cost().to_string()),
                esc(&d.after.cost().to_string()),
                esc(&format!("{:+}", d.delta()))
            );
        }
        out.push_str("</tbody>\n</table>\n");
        if deltas.len() > DIFF_TOP_K {
            let _ = writeln!(
                out,
                "<p>({} more changed edge(s) not shown)</p>",
                esc(&(deltas.len() - DIFF_TOP_K).to_string())
            );
        }
    }
    out
}

fn witness_label(w: &Witness) -> String {
    match w {
        Witness::Cycle { nodes, ratio } => {
            format!("cycle {} (ratio {ratio})", nodes.join(" -> "))
        }
        Witness::Resource {
            total_compute,
            usable_pes,
            heaviest,
            shared_pair,
        } => {
            let mut s = format!("W={total_compute} over {usable_pes} PE(s), heaviest {heaviest}");
            if let Some((a, b)) = shared_pair {
                let _ = write!(s, "; {a} and {b} must share a PE");
            }
            s
        }
        Witness::Chain { nodes, total_time } => {
            format!(
                "zero-delay chain {} (time {total_time})",
                nodes.join(" -> ")
            )
        }
        Witness::Cut {
            pes_used,
            compute_floor,
            comm_floor,
            edge,
            route,
        } => {
            let mut s =
                format!("{pes_used} PE(s): compute floor {compute_floor}, comm floor {comm_floor}");
            if let Some((a, b)) = edge {
                // ESCAPED: builds a plain-text label; the certificate
                // table routes it through esc() at the render site.
                let _ = write!(s, "; cheapest crossing {a}->{b}");
            }
            if !route.is_empty() {
                let hops: Vec<String> = route.iter().map(|p| format!("PE{}", p + 1)).collect();
                let _ = write!(s, " via {}", hops.join(">"));
            }
            s
        }
    }
}

fn certificate_section(report: Option<&OptimalityReport>) -> String {
    let mut out = String::new();
    let Some(r) = report else {
        out.push_str("<p>no certificate was computed for this run</p>\n");
        return out;
    };
    let best = r.bounds.best_value();
    out.push_str(
        "<table>\n<thead><tr><th class=\"l\">bound</th><th>floor</th>\
         <th class=\"l\">witness</th></tr></thead>\n<tbody>\n",
    );
    for c in r.bounds.certificates() {
        let binding = if c.value == best {
            " class=\"binding\""
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "<tr{binding}><td class=\"l\">{}</td><td>{}</td><td class=\"l\">{}</td></tr>",
            esc(c.kind.name()),
            esc(&c.value.to_string()),
            esc(&witness_label(&c.witness))
        );
    }
    out.push_str("</tbody>\n</table>\n");
    match r.verdict {
        BoundsVerdict::Optimal => {
            let _ = writeln!(
                out,
                "<p>period {}: <span class=\"accepted\">PROVABLY OPTIMAL</span> \
                 — meets the strongest floor {}</p>",
                esc(&r.period.to_string()),
                esc(&best.to_string())
            );
        }
        BoundsVerdict::Gap => {
            let _ = writeln!(
                out,
                "<p>period {}: within {} step(s) of the strongest proven floor {} (gap {}%)</p>",
                esc(&r.period.to_string()),
                esc(&r.gap.to_string()),
                esc(&best.to_string()),
                esc(&format!("{:.1}", r.gap_pct))
            );
        }
        BoundsVerdict::BoundExceeded => {
            let _ = writeln!(
                out,
                "<p>period {}: <span class=\"reverted\">BELOW A PROVEN BOUND</span> \
                 — certifier or scheduler bug</p>",
                esc(&r.period.to_string())
            );
        }
    }
    let _ = writeln!(
        out,
        "<details><summary>full certificate</summary>\n<pre>{}</pre>\n</details>",
        esc(&r.render_human())
    );
    out
}

/// Renders the complete report document.  `name` resolves node indices
/// to human names (the graph's node names, typically).
pub fn render_report(input: &ReportInput<'_>, mut name: impl FnMut(u32) -> String) -> String {
    let story = fold::fold(input.events);
    let accepted = story.accepted_passes().count();
    let meta = format!(
        "{} task(s) on {} PE(s) ({}); start-up length {} -> best {} after {} pass(es), {} accepted",
        story.tasks,
        story.pes,
        input.machine.name(),
        story.startup_length,
        story.best_length,
        story.passes_run,
        accepted
    );
    let sections = [
        (
            "schedule",
            "Schedule: start-up placement and accepted passes",
            schedule_section(&story, &mut name),
        ),
        (
            "heatmaps",
            "Link-load heatmaps per accepted phase",
            heatmaps_section(input.profile, input.machine),
        ),
        (
            "trajectory",
            "Pass trajectory and ledger diffs",
            trajectory_section(input.profile, input.machine, &mut name),
        ),
        (
            "certificate",
            "Optimality certificate",
            certificate_section(input.certificate),
        ),
    ];
    html::document(input.title, &meta, &sections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_trace::Event;

    fn te(event: Event) -> TimedEvent {
        TimedEvent { ns: 0, event }
    }

    fn tiny_events() -> Vec<TimedEvent> {
        vec![
            te(Event::StartupBegin { tasks: 2, pes: 2 }),
            te(Event::StartupPlace {
                node: 0,
                pe: 0,
                cs: 0,
                duration: 1,
            }),
            te(Event::StartupPlace {
                node: 1,
                pe: 1,
                cs: 1,
                duration: 1,
            }),
            te(Event::StartupEnd { length: 2 }),
            te(Event::CompactEnd {
                initial: 2,
                best: 2,
                passes: 0,
            }),
        ]
    }

    #[test]
    fn report_shell_carries_all_four_sections() {
        let m = Machine::linear_array(2);
        let events = tiny_events();
        let profile = ccs_profile::build(&events, &m);
        let html = render_report(
            &ReportInput {
                title: "tiny on line2",
                events: &events,
                machine: &m,
                profile: &profile,
                certificate: None,
            },
            |n| format!("n{n}"),
        );
        for id in ["schedule", "heatmaps", "trajectory", "certificate"] {
            assert!(
                html.contains(&format!("<section id=\"{id}\">")),
                "missing section {id}"
            );
        }
        assert!(html.contains("start-up schedule (pass 0): length 2"));
        assert!(html.contains("no certificate was computed"));
    }

    #[test]
    fn hostile_node_names_are_escaped_everywhere() {
        let m = Machine::linear_array(2);
        let events = tiny_events();
        let profile = ccs_profile::build(&events, &m);
        let html = render_report(
            &ReportInput {
                title: "t",
                events: &events,
                machine: &m,
                profile: &profile,
                certificate: None,
            },
            |n| format!("<b>&n{n}</b>"),
        );
        assert!(!html.contains("<b>"), "raw node name leaked into markup");
        assert!(html.contains("&lt;b&gt;&amp;n0&lt;/b&gt;"));
    }

    #[test]
    fn gantt_viewbox_matches_width_and_height() {
        let svg = gantt_svg("cap", 2, 3, &[]);
        let w = G_LEFT + 3 * CW + 8;
        let h = G_TOP + 2 * RH + 6;
        assert!(svg.contains(&format!(
            "width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\""
        )));
    }
}

//! Folds a recorded event stream into the [`RunStory`] the report
//! panels render: the complete start-up placement, and per pass the
//! rotation set, each successful re-placement with the candidate-scan
//! verdicts (`AN`-window bounds per PE) of its winning attempt, and
//! the accept/revert outcome.
//!
//! This is the report's own fold consumer over `ccs-trace` — a sibling
//! of the explainer, but structured (it keeps the data, not prose) so
//! the SVG renderers can place rectangles and attach hover titles.

use ccs_trace::event::{Event, RunnerUp, Verdict};
use ccs_trace::TimedEvent;

/// One node placed by the start-up list scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StartupPlacement {
    /// The placed node.
    pub node: u32,
    /// Chosen processor.
    pub pe: u32,
    /// Start control step.
    pub cs: u32,
    /// Execution time (control steps occupied).
    pub duration: u32,
}

/// One candidate PE scanned for a re-placement attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandidateScan {
    /// Candidate processor.
    pub pe: u32,
    /// `AN`-window lower bound.
    pub lb: i64,
    /// `AN`-window upper bound.
    pub ub: i64,
    /// Communication traffic of this PE choice.
    pub comm: u32,
    /// Scan outcome.
    pub verdict: Verdict,
}

/// One rotated node successfully re-placed during a pass, with the
/// candidate scan of the winning target attempt.
#[derive(Clone, Debug, PartialEq)]
pub struct Remap {
    /// The node.
    pub node: u32,
    /// Chosen processor.
    pub pe: u32,
    /// Start control step.
    pub cs: u32,
    /// Execution time.
    pub duration: u32,
    /// Target length of the successful attempt.
    pub target: u32,
    /// Schedule length the placement forces.
    pub impact: u32,
    /// Communication traffic of the placement.
    pub comm: u32,
    /// Second-best candidate, if any.
    pub runner_up: Option<RunnerUp>,
    /// Per-PE scan verdicts of the winning attempt, in scan order.
    pub candidates: Vec<CandidateScan>,
}

/// One rotate-remap pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PassStory {
    /// 1-based pass number.
    pub pass: u32,
    /// Schedule length entering the pass.
    pub prev_len: u32,
    /// The rotation set `J`, in remap order.
    pub rotated: Vec<u32>,
    /// Successful re-placements, in placement order.
    pub remaps: Vec<Remap>,
    /// Failed `(node, target)` attempts (the remap retried longer).
    pub no_slots: u32,
    /// Whether the pass survived.
    pub accepted: bool,
    /// Schedule length after the pass.
    pub length: u32,
}

/// Everything the schedule panels need, folded from one event stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunStory {
    /// Tasks scheduled.
    pub tasks: u32,
    /// Processors of the machine.
    pub pes: u32,
    /// The complete start-up placement, in placement order.
    pub startup: Vec<StartupPlacement>,
    /// Start-up schedule length.
    pub startup_length: u32,
    /// Every rotate-remap pass, in pass order.
    pub passes: Vec<PassStory>,
    /// Best schedule length after compaction.
    pub best_length: u32,
    /// Passes actually run.
    pub passes_run: u32,
}

impl RunStory {
    /// The accepted passes, in pass order.
    pub fn accepted_passes(&self) -> impl Iterator<Item = &PassStory> {
        self.passes.iter().filter(|p| p.accepted)
    }
}

/// Folds `events` into a [`RunStory`].
pub fn fold(events: &[TimedEvent]) -> RunStory {
    let mut story = RunStory::default();
    let mut cur: Option<PassStory> = None;
    // Candidate buffer of the attempt currently being scanned, keyed
    // by (node, target); a Placed/NoSlot event closes the attempt.
    let mut scan: Vec<CandidateScan> = Vec::new();
    let mut scan_key: Option<(u32, u32)> = None;
    for te in events {
        match &te.event {
            Event::StartupBegin { tasks, pes } => {
                story.tasks = *tasks;
                story.pes = *pes;
            }
            Event::StartupPlace {
                node,
                pe,
                cs,
                duration,
            } => story.startup.push(StartupPlacement {
                node: *node,
                pe: *pe,
                cs: *cs,
                duration: *duration,
            }),
            Event::StartupEnd { length } => {
                story.startup_length = *length;
                story.best_length = *length;
            }
            Event::PassBegin {
                pass,
                prev_len,
                rows: _,
            } => {
                cur = Some(PassStory {
                    pass: *pass,
                    prev_len: *prev_len,
                    ..PassStory::default()
                });
            }
            Event::Rotate { nodes } => {
                if let Some(p) = cur.as_mut() {
                    p.rotated = nodes.clone();
                }
            }
            Event::Candidate {
                node,
                target,
                pe,
                lb,
                ub,
                comm,
                verdict,
            } => {
                if scan_key != Some((*node, *target)) {
                    scan.clear();
                    scan_key = Some((*node, *target));
                }
                scan.push(CandidateScan {
                    pe: *pe,
                    lb: *lb,
                    ub: *ub,
                    comm: *comm,
                    verdict: *verdict,
                });
            }
            Event::Placed {
                node,
                pe,
                cs,
                duration,
                target,
                impact,
                comm,
                runner_up,
            } => {
                let candidates = if scan_key == Some((*node, *target)) {
                    scan_key = None;
                    std::mem::take(&mut scan)
                } else {
                    Vec::new()
                };
                if let Some(p) = cur.as_mut() {
                    p.remaps.push(Remap {
                        node: *node,
                        pe: *pe,
                        cs: *cs,
                        duration: *duration,
                        target: *target,
                        impact: *impact,
                        comm: *comm,
                        runner_up: *runner_up,
                        candidates,
                    });
                }
            }
            Event::NoSlot { .. } => {
                scan.clear();
                scan_key = None;
                if let Some(p) = cur.as_mut() {
                    p.no_slots += 1;
                }
            }
            Event::PassEnd {
                pass,
                accepted,
                length,
            } => {
                let mut p = cur.take().unwrap_or_default();
                p.pass = *pass;
                p.accepted = *accepted;
                p.length = *length;
                story.passes.push(p);
            }
            Event::CompactEnd {
                initial,
                best,
                passes,
            } => {
                story.startup_length = *initial;
                story.best_length = *best;
                story.passes_run = *passes;
            }
            // The flight-recorder story tracks placements and pass
            // outcomes.  Everything else is deliberately skipped
            // (`cargo xtask lint` keeps this list honest):
            // EVENT-IGNORED: ReadyPick — pick rationale, too fine for the report.
            // EVENT-IGNORED: StartupDefer — defers surface as later StartupPlace rows.
            // EVENT-IGNORED: CompactBegin — config echo; totals come from CompactEnd.
            // EVENT-IGNORED: SlackRepair — repair detail, below the story's grain.
            // EVENT-IGNORED: PassStats — derived counters; the story re-derives its own.
            // EVENT-IGNORED: BestSnapshot — PassEnd already carries the trajectory.
            // EVENT-IGNORED: OccupancySnapshot — occupancy belongs to the profile pages.
            // EVENT-IGNORED: EdgeTraffic — traffic feeds ccs-profile, not this story.
            // EVENT-IGNORED: PeLoad — load feeds ccs-profile, not this story.
            _ => {}
        }
    }
    story
}

#[cfg(test)]
mod tests {
    use super::*;

    fn te(event: Event) -> TimedEvent {
        TimedEvent { ns: 0, event }
    }

    #[test]
    fn folds_startup_and_passes() {
        let events = vec![
            te(Event::StartupBegin { tasks: 2, pes: 2 }),
            te(Event::StartupPlace {
                node: 0,
                pe: 0,
                cs: 0,
                duration: 1,
            }),
            te(Event::StartupPlace {
                node: 1,
                pe: 1,
                cs: 1,
                duration: 2,
            }),
            te(Event::StartupEnd { length: 3 }),
            te(Event::PassBegin {
                pass: 1,
                prev_len: 3,
                rows: 1,
            }),
            te(Event::Rotate { nodes: vec![0] }),
            te(Event::Candidate {
                node: 0,
                target: 3,
                pe: 0,
                lb: 2,
                ub: 1,
                comm: 0,
                verdict: Verdict::Infeasible,
            }),
            te(Event::Candidate {
                node: 0,
                target: 3,
                pe: 1,
                lb: 0,
                ub: 2,
                comm: 1,
                verdict: Verdict::Leading { cs: 2, impact: 3 },
            }),
            te(Event::Placed {
                node: 0,
                pe: 1,
                cs: 2,
                duration: 1,
                target: 3,
                impact: 3,
                comm: 1,
                runner_up: None,
            }),
            te(Event::PassEnd {
                pass: 1,
                accepted: true,
                length: 3,
            }),
            te(Event::CompactEnd {
                initial: 3,
                best: 3,
                passes: 1,
            }),
        ];
        let s = fold(&events);
        assert_eq!((s.tasks, s.pes), (2, 2));
        assert_eq!(s.startup.len(), 2);
        assert_eq!(s.startup[1].duration, 2);
        assert_eq!(s.passes.len(), 1);
        let p = &s.passes[0];
        assert!(p.accepted);
        assert_eq!(p.rotated, vec![0]);
        assert_eq!(p.remaps.len(), 1);
        assert_eq!(p.remaps[0].pe, 1);
        assert_eq!(p.remaps[0].candidates.len(), 2);
        assert_eq!(p.remaps[0].candidates[0].verdict, Verdict::Infeasible);
        assert_eq!(s.accepted_passes().count(), 1);
    }

    #[test]
    fn failed_attempts_clear_the_scan_buffer() {
        let events = vec![
            te(Event::PassBegin {
                pass: 1,
                prev_len: 4,
                rows: 1,
            }),
            te(Event::Candidate {
                node: 0,
                target: 4,
                pe: 0,
                lb: 0,
                ub: 3,
                comm: 0,
                verdict: Verdict::NoFreeSlot,
            }),
            te(Event::NoSlot { node: 0, target: 4 }),
            te(Event::Candidate {
                node: 0,
                target: 5,
                pe: 0,
                lb: 0,
                ub: 4,
                comm: 0,
                verdict: Verdict::Leading { cs: 1, impact: 5 },
            }),
            te(Event::Placed {
                node: 0,
                pe: 0,
                cs: 1,
                duration: 1,
                target: 5,
                impact: 5,
                comm: 0,
                runner_up: None,
            }),
            te(Event::PassEnd {
                pass: 1,
                accepted: false,
                length: 4,
            }),
        ];
        let s = fold(&events);
        let p = &s.passes[0];
        assert_eq!(p.no_slots, 1);
        assert_eq!(p.remaps.len(), 1);
        assert_eq!(
            p.remaps[0].candidates.len(),
            1,
            "only the winning target's scan survives"
        );
        assert_eq!(p.remaps[0].candidates[0].ub, 4);
        assert!(!p.accepted);
    }
}

//! Sweep grid dashboard: every metered cell of a
//! `compact_grid_profiled` sweep rendered as one tile — a mini
//! link-load heatmap, the cell's optimality gap as a colored badge,
//! and its trace counters in the hover title.
//!
//! Page contract (enforced by `report-check`):
//!
//! * the legend SVG declares `data-grid-cells="N"` and the page holds
//!   exactly `N` heatmaps tagged `data-cell="workload/machine/config"`,
//!   ids unique — one panel per metered cell, no more, no fewer;
//! * tiles are colored by gap bucket on a fixed five-step ramp, so
//!   two sweeps are visually comparable without reading numbers;
//! * same determinism contract as every report: pure function of the
//!   inputs, byte-identical across thread counts, everything escaped.

use crate::html::{self, esc};
use ccs_profile::render::{heatmap_panel, PanelOptions};
use ccs_profile::{EdgeTraffic, LinkLoad};
use std::fmt::Write as _;

/// One sweep cell, flattened for rendering: identity, lengths, bound,
/// counters, and the final best-schedule traffic to draw.
pub struct GridCellView {
    /// Workload name ("fig1", …).
    pub workload: String,
    /// Machine spec string ("mesh:2x2", …).
    pub machine: String,
    /// Scheduler-config index within the sweep.
    pub config_ix: usize,
    /// Start-up schedule length.
    pub initial: u32,
    /// Best compacted length.
    pub best: u32,
    /// Strongest proven period floor.
    pub bound: u32,
    /// Which bound family proved the floor.
    pub bound_kind: String,
    /// `best - bound` (0 when optimal).
    pub gap: u32,
    /// Gap as a percentage of the floor.
    pub gap_pct: f64,
    /// Trace counters of the run, in deterministic (BTree) order.
    pub counters: Vec<(String, u64)>,
    /// Processor count, for the heatmap matrix.
    pub pes: u32,
    /// Final best-schedule edge ledger.
    pub edges: Vec<EdgeTraffic>,
    /// Final best-schedule link loads.
    pub links: Vec<LinkLoad>,
    /// Whether the machine routes (conservation totals apply).
    pub routable: bool,
}

impl GridCellView {
    /// The cell's unique page id: `workload/machine/config_ix`.
    pub fn id(&self) -> String {
        format!("{}/{}/{}", self.workload, self.machine, self.config_ix)
    }
}

/// Gap-bucket ramp: green (optimal) through red (gap above 30%).
/// Buckets are fixed so two sweep pages are comparable at a glance.
const GAP_RAMP: [(f64, &str, &str); 5] = [
    (0.0, "#1a9850", "optimal (gap 0%)"),
    (5.0, "#91cf60", "gap under 5%"),
    (15.0, "#fee08b", "gap under 15%"),
    (30.0, "#fc8d59", "gap under 30%"),
    (f64::INFINITY, "#d73027", "gap 30% and above"),
];

fn gap_bucket(gap_pct: f64) -> (&'static str, &'static str) {
    for (ceil, color, label) in GAP_RAMP {
        if gap_pct <= ceil {
            return (color, label);
        }
    }
    let last = GAP_RAMP[GAP_RAMP.len() - 1];
    (last.1, last.2)
}

/// The legend SVG: one swatch per gap bucket, carrying the page's
/// declared cell count in `data-grid-cells`.
fn legend_svg(cells: usize) -> String {
    let (sw, row_h, left) = (18u32, 20u32, 8u32);
    let width = 240u32;
    let height = 24 + row_h * u32::try_from(GAP_RAMP.len()).unwrap_or(5) + 4;
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg class="grid-legend" width="{width}" height="{height}" viewBox="0 0 {width} {height}" data-grid-cells="{cells}" role="img">"#
    );
    let _ = writeln!(
        out,
        r#"  <style>.gl-t{{font:12px monospace;fill:#222}}.gl-s{{font:11px monospace;fill:#555}}</style>"#
    );
    let _ = writeln!(
        out,
        r#"  <text class="gl-t" x="4" y="15">{}</text>"#,
        esc(&format!("tile color = optimality gap ({cells} cell(s))"))
    );
    for (i, (_, color, label)) in GAP_RAMP.iter().enumerate() {
        let y = 22 + row_h * u32::try_from(i).unwrap_or(0);
        let _ = writeln!(
            out,
            r##"  <rect x="{left}" y="{y}" width="{sw}" height="{sw}" fill="{color}" stroke="#999" stroke-width="0.5"/>"##
        );
        let _ = writeln!(
            out,
            r#"  <text class="gl-s" x="{tx}" y="{ty}">{}</text>"#,
            esc(label),
            tx = left + sw + 8,
            ty = y + 13
        );
    }
    out.push_str("</svg>\n");
    out
}

fn tile(cell: &GridCellView) -> String {
    let (color, bucket) = gap_bucket(cell.gap_pct);
    let counters: Vec<String> = cell
        .counters
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    let title = format!(
        "{}\ninitial {} -> best {}, floor {} ({})\n{}",
        cell.id(),
        cell.initial,
        cell.best,
        cell.bound,
        cell.bound_kind,
        if counters.is_empty() {
            "no counters recorded".to_string()
        } else {
            counters.join("\n")
        }
    );
    let mut out = String::new();
    let _ = writeln!(out, r#"<div class="tile" title="{}">"#, esc(&title));
    let _ = writeln!(out, r#"<p class="tile-head">{}</p>"#, esc(&cell.id()));
    let _ = writeln!(
        out,
        r#"<p class="tile-gap" style="background:{color}">{}</p>"#,
        esc(&format!(
            "best {} vs floor {} — gap {} ({:.1}%), {}",
            cell.best, cell.bound, cell.gap, cell.gap_pct, bucket
        ))
    );
    out.push_str(&heatmap_panel(
        &format!("best schedule: comm over {} link(s)", cell.links.len()),
        cell.pes,
        &cell.edges,
        &cell.links,
        PanelOptions {
            routable: cell.routable,
            cell: Some(&cell.id()),
            mini: true,
            ..PanelOptions::default()
        },
    ));
    out.push_str("</div>\n");
    out
}

/// Renders the sweep dashboard: a legend section and one tile per
/// metered cell, in the sweep's own (row-major, deterministic) order.
pub fn render_grid_report(title: &str, cells: &[GridCellView]) -> String {
    let meta = format!("{} metered cell(s); tiles in sweep order", cells.len());
    let mut grid = String::new();
    grid.push_str("<div class=\"grid\">\n");
    for c in cells {
        grid.push_str(&tile(c));
    }
    grid.push_str("</div>\n");
    let sections = [
        ("legend", "Legend: gap ramp", legend_svg(cells.len())),
        ("grid", "Sweep grid: one tile per cell", grid),
    ];
    html::document(title, &meta, &sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(ix: usize, gap: u32, pct: f64) -> GridCellView {
        GridCellView {
            workload: "fig1".to_string(),
            machine: "mesh:2x2".to_string(),
            config_ix: ix,
            initial: 8,
            best: 6 + gap,
            bound: 6,
            bound_kind: "cycle_ratio".to_string(),
            gap,
            gap_pct: pct,
            counters: vec![("scan.candidates".to_string(), 42)],
            pes: 2,
            edges: vec![EdgeTraffic {
                edge: 0,
                src: 0,
                dst: 1,
                src_pe: 0,
                dst_pe: 1,
                hops: 1,
                volume: 2,
            }],
            links: vec![LinkLoad {
                a: 0,
                b: 1,
                volume: 2,
                messages: 1,
            }],
            routable: true,
        }
    }

    #[test]
    fn grid_page_declares_and_renders_every_cell() {
        let cells = vec![cell(0, 0, 0.0), cell(1, 2, 33.3)];
        let html = render_grid_report("sweep", &cells);
        assert!(html.contains(r#"data-grid-cells="2""#), "{html}");
        assert!(html.contains(r#"data-cell="fig1/mesh:2x2/0""#), "{html}");
        assert!(html.contains(r#"data-cell="fig1/mesh:2x2/1""#), "{html}");
        assert!(html.contains("scan.candidates=42"), "{html}");
        assert!(html.contains("#1a9850"), "optimal tile is green: {html}");
        assert!(html.contains("#d73027"), "33% tile is red: {html}");
        crate::check::check_html(&html).expect("grid page passes report-check");
    }

    #[test]
    fn empty_sweep_renders_a_zero_cell_page_that_still_checks() {
        let html = render_grid_report("sweep", &[]);
        assert!(html.contains(r#"data-grid-cells="0""#), "{html}");
        crate::check::check_html(&html).expect("empty grid passes");
    }

    #[test]
    fn grid_page_is_deterministic_and_escapes_hostile_ids() {
        let mut hostile = cell(0, 1, 10.0);
        hostile.machine = "mesh<2&2>".to_string();
        let a = render_grid_report("s", std::slice::from_ref(&hostile));
        assert!(!a.contains("mesh<2"), "{a}");
        assert!(a.contains("mesh&lt;2&amp;2&gt;"), "{a}");
        assert_eq!(a, render_grid_report("s", std::slice::from_ref(&hostile)));
        crate::check::check_html(&a).expect("hostile ids escaped");
    }

    #[test]
    fn gap_buckets_are_monotone() {
        assert_eq!(gap_bucket(0.0).0, "#1a9850");
        assert_eq!(gap_bucket(4.9).0, "#91cf60");
        assert_eq!(gap_bucket(14.0).0, "#fee08b");
        assert_eq!(gap_bucket(29.0).0, "#fc8d59");
        assert_eq!(gap_bucket(95.0).0, "#d73027");
    }
}

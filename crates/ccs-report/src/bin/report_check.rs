//! `report-check` — validates an HTML report produced by
//! `cyclosched schedule --report`.
//!
//! ```text
//! report-check report.html
//! ```
//!
//! Re-verifies the renderer's output contract on the artifact itself
//! (see [`ccs_report::check`]): document shell, escaping discipline
//! (every `<` opens a whitelisted tag, every `&` a known entity, no
//! `<script>`), SVG viewBox sanity, and ledger/link conservation on
//! every routable heatmap.  Exit codes: `0` valid, `1` invalid,
//! `2` usage/IO error.  CI runs this on the artifact uploaded by the
//! report job.

use ccs_report::check::check_html;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = match (args.next(), args.next()) {
        (Some(p), None) if p != "--help" && p != "-h" => p,
        _ => {
            eprintln!("usage: report-check <report.html>");
            return ExitCode::from(2);
        }
    };
    let html = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("report-check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match check_html(&html) {
        Ok(facts) => {
            println!(
                "{path}: OK — {} section(s), {} svg(s), {} conservation check(s)",
                facts.sections, facts.svgs, facts.conserved
            );
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("{path}: INVALID — {e}");
            }
            ExitCode::FAILURE
        }
    }
}

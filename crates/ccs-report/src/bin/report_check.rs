//! `report-check` — validates an HTML report produced by
//! `cyclosched schedule --report` (or `--report-diff`, or a sweep's
//! `--report` grid page), and standalone SVG heatmap exports.
//!
//! ```text
//! report-check report.html
//! report-check --heatmap-svg heatmap.svg
//! ```
//!
//! Re-verifies the renderer's output contract on the artifact itself
//! (see [`ccs_report::check`]): document shell, escaping discipline
//! (every `<` opens a whitelisted tag, every `&` a known entity, no
//! `<script>`), SVG viewBox sanity, ledger/link conservation on every
//! routable heatmap, both-sides conservation on diff pages, and
//! one-heatmap-per-cell on grid pages.  With `--heatmap-svg` the same
//! scan runs against a standalone SVG export, which must additionally
//! declare the SVG namespace.  Exit codes: `0` valid, `1` invalid,
//! `2` usage/IO error.  CI runs this on every artifact uploaded by the
//! report job.

use ccs_report::check::{check_html, check_svg, ReportFacts};
use std::process::ExitCode;

const USAGE: &str =
    "usage: report-check <report.html>\n       report-check --heatmap-svg <heatmap.svg>";

fn report(path: &str, what: &str, outcome: Result<ReportFacts, Vec<String>>) -> ExitCode {
    match outcome {
        Ok(facts) => {
            println!(
                "{path}: OK — {what}: {} section(s), {} svg(s), {} conservation check(s), \
                 {} grid cell(s)",
                facts.sections, facts.svgs, facts.conserved, facts.grid_cells
            );
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("{path}: INVALID — {e}");
            }
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (svg_mode, path) = match args.as_slice() {
        [p] if p != "--help" && p != "-h" && !p.starts_with("--") => (false, p.clone()),
        [flag, p] if flag == "--heatmap-svg" => (true, p.clone()),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("report-check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if svg_mode {
        report(&path, "standalone svg", check_svg(&text))
    } else {
        report(&path, "report", check_html(&text))
    }
}

//! Criterion benchmarks of the scheduling pipeline itself (B1-B3 of
//! the experiment index): start-up scheduling, one rotate-remap pass,
//! and full cyclo-compaction, across workload sizes and machines.

use ccs_core::remap::{rotate_remap, RemapConfig};
use ccs_core::{cyclo_compact, startup_schedule, CompactConfig, StartupConfig};
use ccs_model::transform::slowdown;
use ccs_topology::Machine;
use ccs_workloads::{random_csdfg, OpTimes, RandomGraphConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_startup(c: &mut Criterion) {
    let mut group = c.benchmark_group("startup_schedule");
    for (name, graph) in [
        ("fig1/6n", ccs_workloads::paper::fig1_example()),
        ("fig7/19n", ccs_workloads::paper::fig7_example()),
        (
            "elliptic/34n",
            ccs_workloads::filters::elliptic_wave_filter(OpTimes::default()),
        ),
        (
            "random/64n",
            random_csdfg(
                RandomGraphConfig {
                    nodes: 64,
                    back_edges: 20,
                    ..Default::default()
                },
                7,
            ),
        ),
    ] {
        let machine = Machine::mesh(4, 2);
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, g| {
            b.iter(|| startup_schedule(black_box(g), &machine, StartupConfig::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_rotate_remap(c: &mut Criterion) {
    let mut group = c.benchmark_group("rotate_remap_pass");
    for machine in [
        Machine::linear_array(8),
        Machine::complete(8),
        Machine::hypercube(3),
    ] {
        let g = ccs_workloads::paper::fig7_example();
        let sched = startup_schedule(&g, &machine, StartupConfig::default()).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(machine.name().to_string()),
            &(g, sched, machine),
            |b, (g, sched, machine)| {
                b.iter(|| rotate_remap(black_box(g), machine, sched, RemapConfig::default()))
            },
        );
    }
    group.finish();
}

fn bench_full_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("cyclo_compact");
    group.sample_size(20);
    let machine = Machine::mesh(4, 2);
    for (name, graph) in [
        ("fig7/19n", ccs_workloads::paper::fig7_example()),
        (
            "elliptic_s3/34n",
            slowdown(
                &ccs_workloads::filters::elliptic_wave_filter(OpTimes::default()),
                3,
            ),
        ),
        (
            "random/48n",
            random_csdfg(
                RandomGraphConfig {
                    nodes: 48,
                    back_edges: 16,
                    ..Default::default()
                },
                11,
            ),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, g| {
            b.iter(|| cyclo_compact(black_box(g), &machine, CompactConfig::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_startup,
    bench_rotate_remap,
    bench_full_compaction
);
criterion_main!(benches);

//! Criterion benchmarks of the substrate crates (B4-B5): topology
//! distance queries, retiming analyses, schedule-table operations, and
//! simulator throughput.

use ccs_core::{startup_schedule, StartupConfig};
use ccs_model::NodeId;
use ccs_retiming::{clock_period, iteration_bound};
use ccs_schedule::Schedule;
use ccs_sim::{replay_static, run_self_timed};
use ccs_topology::{Machine, Pe};
use ccs_workloads::{random_csdfg, OpTimes, RandomGraphConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    group.bench_function("build/hypercube_10", |b| {
        b.iter(|| Machine::hypercube(black_box(10)))
    });
    let m = Machine::hypercube(10);
    group.bench_function("distance/hypercube_10", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in (0..1024).step_by(37) {
                for j in (0..1024).step_by(41) {
                    acc += u64::from(m.distance(Pe(i), Pe(j)));
                }
            }
            acc
        })
    });
    group.bench_function("build/mesh_32x32", |b| b.iter(|| Machine::mesh(32, 32)));
    group.finish();
}

fn bench_retiming(c: &mut Criterion) {
    let mut group = c.benchmark_group("retiming");
    for nodes in [16usize, 48, 96] {
        let g = random_csdfg(
            RandomGraphConfig {
                nodes,
                back_edges: nodes / 3,
                ..Default::default()
            },
            5,
        );
        group.bench_with_input(BenchmarkId::new("iteration_bound", nodes), &g, |b, g| {
            b.iter(|| iteration_bound(black_box(g)))
        });
        group.bench_with_input(BenchmarkId::new("min_clock_period", nodes), &g, |b, g| {
            b.iter(|| clock_period::min_clock_period(black_box(g)))
        });
    }
    group.finish();
}

fn bench_schedule_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_table");
    group.bench_function("place_remove_1k", |b| {
        b.iter(|| {
            let mut s = Schedule::new(8);
            for i in 0..1000usize {
                let pe = Pe((i % 8) as u32);
                let cs = (i / 8 * 3 + 1) as u32;
                s.place(NodeId::from_index(i), pe, cs, 2).unwrap();
            }
            for i in 0..1000usize {
                s.remove(NodeId::from_index(i)).unwrap();
            }
            s
        })
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let g = ccs_workloads::filters::elliptic_wave_filter(OpTimes::default());
    let machine = Machine::hypercube(3);
    let s = startup_schedule(&g, &machine, StartupConfig::default()).unwrap();
    group.bench_function("replay_static/elliptic_x100", |b| {
        b.iter(|| replay_static(black_box(&g), &machine, &s, 100))
    });
    group.bench_function("self_timed/elliptic_x100", |b| {
        b.iter(|| run_self_timed(black_box(&g), &machine, &s, 100))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_topology,
    bench_retiming,
    bench_schedule_table,
    bench_simulator
);
criterion_main!(benches);

//! Pins the structured trace event stream: the scheduler's observable
//! decision sequence is part of the determinism contract, so the exact
//! stream for the paper's running example is golden-tested, and the
//! stream must be identical across repeated (and traced vs. untraced)
//! runs.

use ccs_core::{cyclo_compact, CompactConfig};
use ccs_topology::Machine;
use ccs_trace::{record, Event};

/// Two passes of the paper example keep the golden readable while
/// still covering startup, rotation, candidate scans, placements,
/// stats, occupancy, the best-snapshot path, and the traffic ledger
/// snapshots (per accepted schedule + the final authoritative one
/// before `compact.end`, with per-PE loads).
fn two_pass_config() -> CompactConfig {
    CompactConfig {
        passes: 2,
        ..CompactConfig::default()
    }
}

fn render_stream() -> Vec<String> {
    let g = ccs_workloads::paper::fig1_example();
    let machine = Machine::mesh(2, 2);
    let (outcome, events) = record(|| cyclo_compact(&g, &machine, two_pass_config()));
    outcome.expect("legal");
    events.iter().map(|te| te.event.to_string()).collect()
}

/// The exact stream, pinned.  Debug builds only: the `oracle_calls`
/// counter in `pass.stats` reflects the Pass B oracle, which is
/// compiled out of release builds (without `--features paranoid`).
#[cfg(debug_assertions)]
#[test]
fn fig1_two_pass_stream_is_golden() {
    let golden = "\
compact.begin tasks=6 pes=4 max_passes=2
startup.begin tasks=6 pes=4
startup.pick cs=1 rank=0 node=n0 pf=0
startup.place node=n0 pe=0 cs=1 dur=1
startup.pick cs=2 rank=0 node=n1 pf=1
startup.pick cs=2 rank=1 node=n2 pf=0
startup.place node=n1 pe=0 cs=2 dur=2
startup.defer node=n2 cs=2
startup.pick cs=3 rank=0 node=n2 pf=0
startup.pick cs=3 rank=1 node=n3 pf=0
startup.place node=n2 pe=1 cs=3 dur=1
startup.defer node=n3 cs=3
startup.pick cs=4 rank=0 node=n4 pf=2
startup.pick cs=4 rank=1 node=n3 pf=0
startup.defer node=n4 cs=4
startup.place node=n3 pe=0 cs=4 dur=1
startup.pick cs=5 rank=0 node=n4 pf=1
startup.place node=n4 pe=0 cs=5 dur=2
startup.pick cs=6 rank=0 node=n5 pf=2
startup.defer node=n5 cs=6
startup.pick cs=7 rank=0 node=n5 pf=1
startup.place node=n5 pe=0 cs=7 dur=1
traffic.edge edge=e0 n0->n1 pe=0->0 hops=0 vol=1 cost=0 crossing=false
traffic.edge edge=e1 n0->n2 pe=0->1 hops=1 vol=1 cost=1 crossing=true
traffic.edge edge=e2 n0->n4 pe=0->0 hops=0 vol=1 cost=0 crossing=false
traffic.edge edge=e3 n1->n3 pe=0->0 hops=0 vol=1 cost=0 crossing=false
traffic.edge edge=e4 n1->n4 pe=0->0 hops=0 vol=2 cost=0 crossing=false
traffic.edge edge=e5 n2->n4 pe=1->0 hops=1 vol=1 cost=1 crossing=true
traffic.edge edge=e6 n3->n0 pe=0->0 hops=0 vol=3 cost=0 crossing=false
traffic.edge edge=e7 n3->n5 pe=0->0 hops=0 vol=2 cost=0 crossing=false
traffic.edge edge=e8 n4->n5 pe=0->0 hops=0 vol=1 cost=0 crossing=false
traffic.edge edge=e9 n5->n4 pe=0->0 hops=0 vol=1 cost=0 crossing=false
startup.end len=7
pass.begin pass=1 len=7 rows=1
pass.rotate nodes=[n0]
remap.candidate node=n0 target=6 pe=0 lb=1 ub=6 comm=1 verdict=busy
remap.candidate node=n0 target=6 pe=1 lb=1 ub=5 comm=5 verdict=leading cs=1 impact=3
remap.candidate node=n0 target=6 pe=2 lb=1 ub=5 comm=7 verdict=feasible cs=1 impact=3
remap.candidate node=n0 target=6 pe=3 lb=1 ub=4 comm=11 verdict=feasible cs=1 impact=5
remap.place node=n0 pe=1 cs=1 dur=1 target=6 impact=3 comm=5 runner_up=pe3@cs1(impact=3,comm=7)
traffic.edge edge=e0 n0->n1 pe=1->0 hops=1 vol=1 cost=1 crossing=true
traffic.edge edge=e1 n0->n2 pe=1->1 hops=0 vol=1 cost=0 crossing=false
traffic.edge edge=e2 n0->n4 pe=1->0 hops=1 vol=1 cost=1 crossing=true
traffic.edge edge=e3 n1->n3 pe=0->0 hops=0 vol=1 cost=0 crossing=false
traffic.edge edge=e4 n1->n4 pe=0->0 hops=0 vol=2 cost=0 crossing=false
traffic.edge edge=e5 n2->n4 pe=1->0 hops=1 vol=1 cost=1 crossing=true
traffic.edge edge=e6 n3->n0 pe=0->1 hops=1 vol=3 cost=3 crossing=true
traffic.edge edge=e7 n3->n5 pe=0->0 hops=0 vol=2 cost=0 crossing=false
traffic.edge edge=e8 n4->n5 pe=0->0 hops=0 vol=1 cost=0 crossing=false
traffic.edge edge=e9 n5->n4 pe=0->0 hops=0 vol=1 cost=0 crossing=false
pass.stats edges=16 slots=4 scratch=0 oracle=2
pass.end pass=1 accepted=true len=6
schedule.occupancy pass=1 busy=8 holes=0 used_pes=2 len=6
compact.best pass=1 len=6
pass.begin pass=2 len=6 rows=1
pass.rotate nodes=[n1,n0]
remap.candidate node=n1 target=5 pe=0 lb=1 ub=5 comm=0 verdict=busy
remap.candidate node=n1 target=5 pe=1 lb=1 ub=5 comm=3 verdict=leading cs=2 impact=3
remap.candidate node=n1 target=5 pe=2 lb=1 ub=5 comm=3 verdict=leading cs=1 impact=2
remap.candidate node=n1 target=5 pe=3 lb=1 ub=3 comm=6 verdict=feasible cs=1 impact=4
remap.place node=n1 pe=2 cs=1 dur=2 target=5 impact=2 comm=3 runner_up=pe2@cs2(impact=3,comm=3)
remap.candidate node=n0 target=5 pe=0 lb=1 ub=4 comm=2 verdict=leading cs=1 impact=2
remap.candidate node=n0 target=5 pe=1 lb=1 ub=3 comm=6 verdict=feasible cs=2 impact=4
remap.candidate node=n0 target=5 pe=2 lb=1 ub=5 comm=6 verdict=feasible cs=3 impact=3
remap.candidate node=n0 target=5 pe=3 lb=4 ub=4 comm=10 verdict=feasible cs=4 impact=5
remap.place node=n0 pe=0 cs=1 dur=1 target=5 impact=2 comm=2 runner_up=pe3@cs3(impact=3,comm=6)
traffic.edge edge=e0 n0->n1 pe=0->2 hops=1 vol=1 cost=1 crossing=true
traffic.edge edge=e1 n0->n2 pe=0->1 hops=1 vol=1 cost=1 crossing=true
traffic.edge edge=e2 n0->n4 pe=0->0 hops=0 vol=1 cost=0 crossing=false
traffic.edge edge=e3 n1->n3 pe=2->0 hops=1 vol=1 cost=1 crossing=true
traffic.edge edge=e4 n1->n4 pe=2->0 hops=1 vol=2 cost=2 crossing=true
traffic.edge edge=e5 n2->n4 pe=1->0 hops=1 vol=1 cost=1 crossing=true
traffic.edge edge=e6 n3->n0 pe=0->0 hops=0 vol=3 cost=0 crossing=false
traffic.edge edge=e7 n3->n5 pe=0->0 hops=0 vol=2 cost=0 crossing=false
traffic.edge edge=e8 n4->n5 pe=0->0 hops=0 vol=1 cost=0 crossing=false
traffic.edge edge=e9 n5->n4 pe=0->0 hops=0 vol=1 cost=0 crossing=false
pass.stats edges=24 slots=8 scratch=0 oracle=2
pass.end pass=2 accepted=true len=5
schedule.occupancy pass=2 busy=8 holes=0 used_pes=3 len=5
compact.best pass=2 len=5
traffic.edge edge=e0 n0->n1 pe=0->2 hops=1 vol=1 cost=1 crossing=true
traffic.edge edge=e1 n0->n2 pe=0->1 hops=1 vol=1 cost=1 crossing=true
traffic.edge edge=e2 n0->n4 pe=0->0 hops=0 vol=1 cost=0 crossing=false
traffic.edge edge=e3 n1->n3 pe=2->0 hops=1 vol=1 cost=1 crossing=true
traffic.edge edge=e4 n1->n4 pe=2->0 hops=1 vol=2 cost=2 crossing=true
traffic.edge edge=e5 n2->n4 pe=1->0 hops=1 vol=1 cost=1 crossing=true
traffic.edge edge=e6 n3->n0 pe=0->0 hops=0 vol=3 cost=0 crossing=false
traffic.edge edge=e7 n3->n5 pe=0->0 hops=0 vol=2 cost=0 crossing=false
traffic.edge edge=e8 n4->n5 pe=0->0 hops=0 vol=1 cost=0 crossing=false
traffic.edge edge=e9 n5->n4 pe=0->0 hops=0 vol=1 cost=0 crossing=false
traffic.pe pe=0 tasks=4 busy=5
traffic.pe pe=1 tasks=1 busy=1
traffic.pe pe=2 tasks=1 busy=2
traffic.pe pe=3 tasks=0 busy=0
compact.end init=7 best=5 passes=2";
    let stream = render_stream().join("\n");
    assert_eq!(
        stream, golden,
        "trace stream drifted; if the change is intentional, update the golden"
    );
}

/// Structural invariants of the stream, build-profile independent.
#[test]
fn stream_brackets_and_repeats_deterministically() {
    let a = render_stream();
    let b = render_stream();
    assert_eq!(a, b, "same run must emit the same event stream");

    let g = ccs_workloads::paper::fig1_example();
    let machine = Machine::mesh(2, 2);
    let (_, events) = record(|| cyclo_compact(&g, &machine, two_pass_config()));
    assert!(matches!(
        events.first().map(|t| &t.event),
        Some(Event::CompactBegin { .. })
    ));
    assert!(matches!(
        events.last().map(|t| &t.event),
        Some(Event::CompactEnd { .. })
    ));
    let begins = events
        .iter()
        .filter(|t| matches!(t.event, Event::PassBegin { .. }))
        .count();
    let ends = events
        .iter()
        .filter(|t| matches!(t.event, Event::PassEnd { .. }))
        .count();
    assert_eq!(begins, 2);
    assert_eq!(ends, 2);
    // Recorder timestamps are monotone.
    assert!(events.windows(2).all(|w| w[0].ns <= w[1].ns));
}

/// Tracing must not change the scheduling outcome.
#[test]
fn traced_outcome_matches_untraced() {
    let g = ccs_workloads::paper::fig1_example();
    let machine = Machine::mesh(2, 2);
    let plain = cyclo_compact(&g, &machine, two_pass_config()).expect("legal");
    let (traced, _) = record(|| cyclo_compact(&g, &machine, two_pass_config()));
    let traced = traced.expect("legal");
    assert_eq!(plain.best_length, traced.best_length);
    assert_eq!(plain.initial_length, traced.initial_length);
    let a: Vec<_> = plain.schedule.placements().collect();
    let b: Vec<_> = traced.schedule.placements().collect();
    assert_eq!(a, b);
}

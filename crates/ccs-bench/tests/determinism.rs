//! Determinism guarantees the perf work must not break: `cyclo_compact`
//! output schedules are identical (placements, lengths, and pass
//! history — not just final lengths) across repeated runs, and the
//! parallel sweep driver returns byte-identical reports at any thread
//! count.

use ccs_bench::experiments::random_sweep;
use ccs_bench::{compact_grid, compact_grid_metered, run_many};
use ccs_core::{cyclo_compact, CompactConfig};
use ccs_topology::Machine;

/// Canonical textual encoding of everything observable about a
/// compaction result: every placement plus the per-pass history.
fn encode(r: &ccs_core::Compaction) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(out, "init={} best={}", r.initial_length, r.best_length).unwrap();
    for (node, slot) in r.schedule.placements() {
        writeln!(
            out,
            "{} pe{} cs{}+{}",
            node.index(),
            slot.pe.index(),
            slot.start,
            slot.duration
        )
        .unwrap();
    }
    for rec in &r.history {
        writeln!(
            out,
            "pass {} len {} reverted {} rotated {:?}",
            rec.pass,
            rec.length,
            rec.reverted,
            rec.rotated.iter().map(|v| v.index()).collect::<Vec<_>>()
        )
        .unwrap();
    }
    out
}

fn machine_suite() -> Vec<Machine> {
    vec![
        Machine::linear_array(8),
        Machine::mesh(4, 2),
        Machine::complete(8),
        Machine::hypercube(3),
    ]
}

#[test]
fn cyclo_compact_is_run_to_run_deterministic() {
    for w in ccs_workloads::all_workloads() {
        let g = w.build();
        for machine in machine_suite() {
            let a = cyclo_compact(&g, &machine, CompactConfig::default()).expect("legal");
            let b = cyclo_compact(&g, &machine, CompactConfig::default()).expect("legal");
            assert_eq!(
                encode(&a),
                encode(&b),
                "{} on {} differs between runs",
                w.name,
                machine.name()
            );
        }
    }
}

#[test]
fn sweep_driver_is_thread_count_invariant() {
    // The rayon stand-in (and upstream rayon's indexed collect) returns
    // results in input order; pin the thread count via the same env var
    // both honor and compare full reports.
    let run_at = |threads: &str| {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let sweep = format!("{:?}", random_sweep(&[12, 16], 3));
        let grid = format!(
            "{:?}",
            compact_grid(
                &ccs_workloads::all_workloads(),
                &machine_suite(),
                &[CompactConfig::default()],
            )
        );
        let many: Vec<u64> = run_many((0..97u64).collect(), |x| x * x);
        std::env::remove_var("RAYON_NUM_THREADS");
        (sweep, grid, many)
    };
    let one = run_at("1");
    let four = run_at("4");
    let eight = run_at("8");
    assert_eq!(one, four, "1 vs 4 threads");
    assert_eq!(one, eight, "1 vs 8 threads");
}

#[test]
fn parallel_candidate_scan_is_thread_count_invariant() {
    // Force the engine's parallel chunk scan on (threshold 1 puts every
    // machine above it) and pin the worker count: the chunked scan plus
    // ascending-PE reduce must reproduce the sequential engine — and
    // therefore the reference sweep — byte-for-byte at any thread
    // count, on the paper workloads and on random graph × wide-machine
    // cells.
    use ccs_core::{RemapConfig, ScanPolicy};
    use ccs_workloads::{random_csdfg, RandomGraphConfig};

    let wide_machines = vec![
        Machine::mesh(4, 4),
        Machine::complete(16),
        Machine::mesh(8, 8),
    ];
    let mut cells: Vec<(String, ccs_model::Csdfg, Machine)> = Vec::new();
    for w in ccs_workloads::all_workloads() {
        for m in machine_suite() {
            cells.push((w.name.to_string(), w.build(), m));
        }
    }
    for seed in [1u64, 5, 9] {
        let g = random_csdfg(
            RandomGraphConfig {
                nodes: 24,
                back_edges: 8,
                ..Default::default()
            },
            seed,
        );
        for m in &wide_machines {
            cells.push((format!("random_{seed}"), g.clone(), m.clone()));
        }
    }

    let config = |scan, parallel_pes| CompactConfig {
        remap: RemapConfig {
            scan,
            parallel_pes,
            ..Default::default()
        },
        ..Default::default()
    };
    let run_at = |threads: &str| {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let out: Vec<String> = cells
            .iter()
            .map(|(name, g, m)| {
                let r = cyclo_compact(g, m, config(ScanPolicy::Engine, 1)).expect("legal");
                format!("{name} on {}:\n{}", m.name(), encode(&r))
            })
            .collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        out
    };
    let one = run_at("1");
    let two = run_at("2");
    let eight = run_at("8");
    assert_eq!(one, two, "parallel scan: 1 vs 2 threads");
    assert_eq!(one, eight, "parallel scan: 1 vs 8 threads");

    // And the forced-parallel engine agrees with the plain sequential
    // scan (threshold above every machine here).
    for ((name, g, m), parallel) in cells.iter().zip(&one) {
        let seq = cyclo_compact(g, m, config(ScanPolicy::Engine, u32::MAX)).expect("legal");
        let seq_enc = format!("{name} on {}:\n{}", m.name(), encode(&seq));
        assert_eq!(&seq_enc, parallel, "sequential vs parallel engine");
    }
}

#[test]
fn metered_sweep_counters_are_thread_count_invariant() {
    // The per-cell MetricsSink observes the (deterministic) event
    // stream of its own cell only, so serializing every cell with
    // `MeteredCell::to_value` — counters, never histograms — must give
    // byte-identical JSON at any thread count.
    let run_at = |threads: &str| {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let cells = compact_grid_metered(
            &ccs_workloads::all_workloads(),
            &machine_suite(),
            &[CompactConfig::default()],
        );
        std::env::remove_var("RAYON_NUM_THREADS");
        let values: Vec<_> = cells.iter().map(ccs_bench::MeteredCell::to_value).collect();
        serde_json::to_string_pretty(&serde::Value::Array(values)).expect("serialize")
    };
    let one = run_at("1");
    let four = run_at("4");
    let eight = run_at("8");
    assert_eq!(one, four, "metered counters: 1 vs 4 threads");
    assert_eq!(one, eight, "metered counters: 1 vs 8 threads");
    // A sweep worth pinning is one that actually metered something.
    assert!(one.contains("\"traffic_cost\""), "{one}");
}

//! The experiment drivers behind the `exp_*` binaries — kept in the
//! library so they are unit-testable and reusable.

use ccs_core::baselines::{oblivious_list_scheduling, oblivious_rotation_scheduling};
use ccs_core::{
    cyclo_compact, startup_schedule, CompactConfig, Priority, RemapMode, StartupConfig,
};
use ccs_model::transform::slowdown;
use ccs_model::Csdfg;
use ccs_retiming::iteration_bound;
use ccs_schedule::validate;
use ccs_sim::{replay_static, run_self_timed};
use ccs_topology::Machine;
use ccs_workloads::{random_csdfg, RandomGraphConfig};

/// One cell group of the paper's Table 11.
#[derive(Clone, Debug)]
pub struct Table11Row {
    /// Application name (`"Elliptic Filter"` / `"Lattice Filter"`).
    pub application: &'static str,
    /// `"w/o"` or `"with"` relaxation.
    pub relax: &'static str,
    /// Per-machine `(init, after)` schedule lengths, in the paper's
    /// machine order: completely connected, linear array, ring, 2-D
    /// mesh, hypercube.
    pub cells: Vec<(u32, u32)>,
}

/// The five machines of Table 11, in the paper's column order.
pub fn table11_machines() -> Vec<Machine> {
    vec![
        Machine::complete(8),
        Machine::linear_array(8),
        Machine::ring(8),
        Machine::mesh(4, 2),
        Machine::hypercube(3),
    ]
}

/// Reproduces Table 11: elliptic + lattice filters, slow-down 3, both
/// remapping policies, five architectures.
pub fn table11() -> Vec<Table11Row> {
    let elliptic = slowdown(
        &ccs_workloads::filters::elliptic_wave_filter(ccs_workloads::OpTimes::default()),
        3,
    );
    let lattice = slowdown(
        &ccs_workloads::filters::lattice_filter(5, ccs_workloads::OpTimes::default()),
        3,
    );
    let machines = table11_machines();
    let mut rows = Vec::new();
    for (relax, mode) in [
        ("w/o", RemapMode::WithoutRelaxation),
        ("with", RemapMode::WithRelaxation),
    ] {
        for (name, graph) in [("Elliptic Filter", &elliptic), ("Lattice Filter", &lattice)] {
            let mut cells = Vec::new();
            for machine in &machines {
                let r = cyclo_compact(graph, machine, CompactConfig::with_mode(mode))
                    .expect("legal workload");
                debug_assert!(validate(&r.graph, machine, &r.schedule).is_ok());
                cells.push((r.initial_length, r.best_length));
            }
            rows.push(Table11Row {
                application: name,
                relax,
                cells,
            });
        }
    }
    rows
}

/// One machine's worth of the 19-node experiment (Tables 1-10): the
/// rendered start-up and compacted tables plus their lengths.
#[derive(Clone, Debug)]
pub struct NineteenNodeResult {
    /// Machine name.
    pub machine: String,
    /// Start-up schedule length (paper: 12-15).
    pub startup_len: u32,
    /// Compacted schedule length (paper: 5-7).
    pub compacted_len: u32,
    /// Rendered start-up table (paper's odd-numbered tables).
    pub startup_table: String,
    /// Rendered compacted table (paper's even-numbered tables).
    pub compacted_table: String,
}

/// Runs the 19-node example on every paper machine.
pub fn nineteen_node() -> Vec<NineteenNodeResult> {
    let g = ccs_workloads::paper::fig7_example();
    table11_machines()
        .into_iter()
        .map(|machine| {
            let r = cyclo_compact(&g, &machine, CompactConfig::default()).expect("legal");
            let name = |v| r.graph.name(v).to_string();
            NineteenNodeResult {
                machine: machine.name().to_string(),
                startup_len: r.initial_length,
                compacted_len: r.best_length,
                startup_table: r.initial.render(name),
                compacted_table: r.schedule.render(|v| r.graph.name(v).to_string()),
            }
        })
        .collect()
}

/// Convergence trace: schedule length after every pass, for both
/// remapping policies (ablation E10).
pub fn relaxation_trace(g: &Csdfg, machine: &Machine, passes: usize) -> (Vec<u32>, Vec<u32>) {
    let run = |mode| {
        let cfg = CompactConfig {
            passes,
            stop_on_revert: false,
            ..CompactConfig::with_mode(mode)
        };
        let r = cyclo_compact(g, machine, cfg).expect("legal");
        r.history.iter().map(|rec| rec.length).collect::<Vec<u32>>()
    };
    (
        run(RemapMode::WithRelaxation),
        run(RemapMode::WithoutRelaxation),
    )
}

/// One row of the priority-function ablation (E11).
#[derive(Clone, Debug)]
pub struct PriorityRow {
    /// Workload name.
    pub workload: &'static str,
    /// Machine name.
    pub machine: String,
    /// Start-up lengths for (PF, mobility-only, FIFO).
    pub lengths: [u32; 3],
}

/// Start-up schedule length under each ready-list policy.
pub fn priority_ablation() -> Vec<PriorityRow> {
    let mut rows = Vec::new();
    for w in ccs_workloads::all_workloads() {
        let g = w.build();
        for machine in [
            Machine::linear_array(8),
            Machine::mesh(4, 2),
            Machine::complete(8),
        ] {
            let mut lengths = [0u32; 3];
            for (i, p) in [
                Priority::CommunicationSensitive,
                Priority::MobilityOnly,
                Priority::Fifo,
            ]
            .into_iter()
            .enumerate()
            {
                let cfg = StartupConfig {
                    priority: p,
                    ..Default::default()
                };
                lengths[i] = startup_schedule(&g, &machine, cfg).expect("legal").length();
            }
            rows.push(PriorityRow {
                workload: w.name,
                machine: machine.name().to_string(),
                lengths,
            });
        }
    }
    rows
}

/// One row of the random sweep (E12).
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Graph size.
    pub nodes: usize,
    /// Machine name.
    pub machine: String,
    /// Mean start-up length across seeds.
    pub mean_startup: f64,
    /// Mean compacted length across seeds.
    pub mean_compacted: f64,
    /// Mean oblivious-list baseline length.
    pub mean_oblivious: f64,
    /// Mean ratio of compacted length to the iteration-bound ceiling.
    pub mean_bound_gap: f64,
}

/// Random-graph sweep over sizes x machines, `seeds` graphs per cell,
/// parallelized across (size, machine) cells via
/// [`crate::driver::run_many`]; row order is deterministic (sizes
/// outer, machines inner) regardless of thread count.
pub fn random_sweep(sizes: &[usize], seeds: u64) -> Vec<SweepRow> {
    let machines = [
        Machine::linear_array(8),
        Machine::mesh(4, 2),
        Machine::complete(8),
    ];
    let cells: Vec<(usize, &Machine)> = sizes
        .iter()
        .flat_map(|&nodes| machines.iter().map(move |m| (nodes, m)))
        .collect();
    crate::driver::run_many(cells, |(nodes, machine)| {
        let mut startup_sum = 0u64;
        let mut compact_sum = 0u64;
        let mut oblivious_sum = 0u64;
        let mut gap_sum = 0f64;
        for seed in 0..seeds {
            let cfg = RandomGraphConfig {
                nodes,
                back_edges: nodes / 3,
                ..Default::default()
            };
            let g = random_csdfg(cfg, seed);
            let r = cyclo_compact(&g, machine, CompactConfig::default()).expect("legal");
            let ob = oblivious_list_scheduling(&g, machine).expect("legal");
            startup_sum += u64::from(r.initial_length);
            compact_sum += u64::from(r.best_length);
            oblivious_sum += u64::from(ob.actual_length);
            let floor = iteration_bound(&g)
                .map(|b| b.ceil() as f64)
                .unwrap_or(1.0)
                .max(1.0);
            gap_sum += f64::from(r.best_length) / floor;
        }
        let n = seeds as f64;
        SweepRow {
            nodes,
            machine: machine.name().to_string(),
            mean_startup: startup_sum as f64 / n,
            mean_compacted: compact_sum as f64 / n,
            mean_oblivious: oblivious_sum as f64 / n,
            mean_bound_gap: gap_sum / n,
        }
    })
}

/// One row of the contention study (E14, extension): the same
/// compacted schedule executed self-timed under the paper's
/// contention-free model vs the link-contended model.
#[derive(Clone, Debug)]
pub struct ContentionRow {
    /// Workload name.
    pub workload: &'static str,
    /// Machine name.
    pub machine: String,
    /// Contention-free self-timed initiation interval.
    pub free_ii: f64,
    /// Contended self-timed initiation interval.
    pub contended_ii: f64,
    /// Mean link utilization in the contended run.
    pub link_utilization: f64,
    /// Busiest link `(a, b)` (1-based PE numbers) and its busy cycles.
    pub hottest: Option<((usize, usize), u64)>,
}

impl ContentionRow {
    /// `contended / free` inflation factor (>= 1 up to rounding).
    pub fn inflation(&self) -> f64 {
        if self.free_ii == 0.0 {
            1.0
        } else {
            self.contended_ii / self.free_ii
        }
    }
}

/// Runs the contention study: how much does the paper's
/// "no congestion" assumption (Definition 3.5) flatter the schedules?
pub fn contention_study(iterations: u32) -> Vec<ContentionRow> {
    let mut rows = Vec::new();
    for w in ccs_workloads::all_workloads() {
        let g = w.build();
        for machine in [
            Machine::linear_array(8),
            Machine::ring(8),
            Machine::mesh(4, 2),
        ] {
            let r = cyclo_compact(&g, &machine, CompactConfig::default()).expect("legal");
            let free = run_self_timed(&r.graph, &machine, &r.schedule, iterations);
            let contended = ccs_sim::run_contended(&r.graph, &machine, &r.schedule, iterations);
            rows.push(ContentionRow {
                workload: w.name,
                machine: machine.name().to_string(),
                free_ii: free.initiation_interval,
                contended_ii: contended.base.initiation_interval,
                link_utilization: contended
                    .links
                    .mean_utilization(contended.base.makespan, machine.links().len()),
                hottest: contended
                    .links
                    .hottest()
                    .map(|((a, b), c)| ((a + 1, b + 1), c)),
            });
        }
    }
    rows
}

/// One row of the optimality-gap study (E15, extension): the heuristic
/// against the exact branch-and-bound scheduler on tiny instances.
#[derive(Clone, Debug)]
pub struct GapRow {
    /// Random seed of the instance.
    pub seed: u64,
    /// Machine name.
    pub machine: String,
    /// Exact optimum (without retiming), if proven within budget.
    pub optimal: Option<u32>,
    /// Start-up (no retiming) heuristic length.
    pub startup: u32,
    /// Full cyclo-compaction length (with retiming — may beat
    /// `optimal`).
    pub compacted: u32,
}

/// Runs the optimality-gap study on `count` random 5-node instances.
pub fn optimality_gap(count: u64) -> Vec<GapRow> {
    use ccs_core::optimal::optimal_schedule;
    let mut rows = Vec::new();
    for seed in 0..count {
        let cfg = RandomGraphConfig {
            nodes: 5,
            forward_density: 0.3,
            back_edges: 2,
            max_time: 3,
            max_volume: 2,
            max_delay: 2,
        };
        let g = random_csdfg(cfg, seed);
        for machine in [Machine::linear_array(3), Machine::complete(3)] {
            let opt = optimal_schedule(&g, &machine, 20_000_000);
            let startup = startup_schedule(&g, &machine, StartupConfig::default())
                .expect("legal")
                .length();
            let compacted = cyclo_compact(&g, &machine, CompactConfig::default())
                .expect("legal")
                .best_length;
            rows.push(GapRow {
                seed,
                machine: machine.name().to_string(),
                optimal: opt.is_proven().then(|| opt.schedule().unwrap().length()),
                startup,
                compacted,
            });
        }
    }
    rows
}

/// One row of the processor-scaling study (E16, extension).
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Number of PEs (completely connected machine).
    pub pes: usize,
    /// Compacted schedule length.
    pub length: u32,
    /// The graph's iteration-bound ceiling (PE-independent floor).
    pub bound: u64,
}

/// Compacted schedule length of a workload on completely connected
/// machines of growing size — the speedup saturation curve.  Each PE
/// count is an independent scheduling problem, so the curve is
/// evaluated in parallel via [`crate::driver::run_many`] (rows come
/// back in PE order at any thread count).
pub fn pe_scaling(workload: &str, max_pes: usize) -> Vec<ScalingRow> {
    let g = ccs_workloads::workload_by_name(workload)
        .unwrap_or_else(|| panic!("unknown workload {workload:?}"))
        .build();
    let bound = iteration_bound(&g).map(|b| b.ceil()).unwrap_or(1);
    crate::driver::run_many((1..=max_pes).collect(), |pes| {
        let machine = Machine::complete(pes);
        let r = cyclo_compact(&g, &machine, CompactConfig::default()).expect("legal");
        ScalingRow {
            pes,
            length: r.best_length,
            bound,
        }
    })
}

/// One row of the multi-row-rotation ablation (E17, extension).
#[derive(Clone, Debug)]
pub struct MultirowRow {
    /// Workload name.
    pub workload: &'static str,
    /// Machine name.
    pub machine: String,
    /// Best compacted length when rotating 1, 2 and 3 rows per pass.
    pub lengths: [u32; 3],
}

/// Rotating more than one schedule row per pass (extension of
/// Definition 4.1): bigger moves, coarser search.  Reports the best
/// compacted lengths per rows-per-pass setting.
pub fn multirow_ablation() -> Vec<MultirowRow> {
    use ccs_core::RemapConfig;
    let mut rows_out = Vec::new();
    for w in ccs_workloads::all_workloads() {
        let g = w.build();
        for machine in [Machine::linear_array(8), Machine::complete(8)] {
            let mut lengths = [0u32; 3];
            for (i, rows) in [1u32, 2, 3].into_iter().enumerate() {
                let cfg = CompactConfig {
                    remap: RemapConfig {
                        rows_per_pass: rows,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                lengths[i] = cyclo_compact(&g, &machine, cfg).expect("legal").best_length;
            }
            rows_out.push(MultirowRow {
                workload: w.name,
                machine: machine.name().to_string(),
                lengths,
            });
        }
    }
    rows_out
}

/// One row of the unfolding-vs-retiming study (E18, extension).
#[derive(Clone, Debug)]
pub struct UnfoldRow {
    /// Workload name.
    pub workload: &'static str,
    /// Unfolding factor.
    pub factor: u32,
    /// Compacted schedule length of the unfolded graph.
    pub length: u32,
    /// Per-original-iteration cost `length / factor`.
    pub per_iteration: f64,
    /// Iteration bound of the original graph (per-iteration floor).
    pub bound: f64,
}

/// Unfolding study: schedule `unfold(g, f)` for `f = 1..=max_factor`
/// and report the per-iteration cost.  Unfolding exposes inter-
/// iteration parallelism *structurally* (bigger graphs), whereas the
/// paper's rotation exposes it *incrementally* (retiming); comparing
/// per-iteration costs shows how much of the unfolding win rotation
/// already captures.
pub fn unfolding_study(max_factor: u32) -> Vec<UnfoldRow> {
    use ccs_model::transform::unfold;
    let machine = Machine::complete(8);
    let mut rows = Vec::new();
    for w in ["fig1", "iir", "diffeq"] {
        let g = ccs_workloads::workload_by_name(w)
            .expect("known workload")
            .build();
        let bound = iteration_bound(&g).map(|b| b.as_f64()).unwrap_or(0.0);
        for f in 1..=max_factor {
            let gu = unfold(&g, f);
            let r = cyclo_compact(&gu, &machine, CompactConfig::default()).expect("legal");
            rows.push(UnfoldRow {
                workload: w,
                factor: f,
                length: r.best_length,
                per_iteration: f64::from(r.best_length) / f64::from(f),
                bound,
            });
        }
    }
    rows
}

/// One row of the jitter-robustness study (E19, extension).
#[derive(Clone, Debug)]
pub struct JitterRow {
    /// Workload name.
    pub workload: &'static str,
    /// Machine name.
    pub machine: String,
    /// Nominal self-timed II of the compacted schedule.
    pub nominal: f64,
    /// Mean jittered II over the seeds, per max-jitter setting 1..=3.
    pub jittered: [f64; 3],
}

/// Jitter-robustness study: how gracefully do compacted schedules
/// degrade when task latencies fluctuate by up to 1..3 cycles?
pub fn jitter_study(iterations: u32, seeds: u64) -> Vec<JitterRow> {
    use ccs_sim::{run_jittered, JitterConfig};
    let mut rows = Vec::new();
    for w in ["fig7", "elliptic", "lattice"] {
        let g = ccs_workloads::workload_by_name(w).expect("known").build();
        for machine in [Machine::mesh(4, 2), Machine::complete(8)] {
            let r = cyclo_compact(&g, &machine, CompactConfig::default()).expect("legal");
            let nominal =
                run_self_timed(&r.graph, &machine, &r.schedule, iterations).initiation_interval;
            let mut jittered = [0.0f64; 3];
            for (ix, max_jitter) in [1u32, 2, 3].into_iter().enumerate() {
                let mut acc = 0.0;
                for seed in 0..seeds {
                    acc += run_jittered(
                        &r.graph,
                        &machine,
                        &r.schedule,
                        iterations,
                        JitterConfig { max_jitter, seed },
                    )
                    .initiation_interval;
                }
                jittered[ix] = acc / seeds as f64;
            }
            rows.push(JitterRow {
                workload: w,
                machine: machine.name().to_string(),
                nominal,
                jittered,
            });
        }
    }
    rows
}

/// Summary of the everything-validates experiment (E13).
#[derive(Clone, Copy, Debug, Default)]
pub struct ValidationSummary {
    /// Schedules checked.
    pub schedules: usize,
    /// Schedules that passed both the algebraic checker and the replay.
    pub passed: usize,
    /// Total replay iterations executed.
    pub replay_iterations: u64,
    /// Total messages simulated.
    pub messages: u64,
}

/// Runs every workload on every paper machine through both the
/// algebraic checker and the cycle-accurate simulator.
pub fn validate_everything(replay_iters: u32) -> ValidationSummary {
    let mut summary = ValidationSummary::default();
    for w in ccs_workloads::all_workloads() {
        let g = w.build();
        for machine in table11_machines() {
            for mode in [RemapMode::WithRelaxation, RemapMode::WithoutRelaxation] {
                let r = cyclo_compact(&g, &machine, CompactConfig::with_mode(mode)).expect("legal");
                summary.schedules += 1;
                let algebraic = validate(&r.graph, &machine, &r.schedule).is_ok();
                let replay = replay_static(&r.graph, &machine, &r.schedule, replay_iters);
                let st = run_self_timed(&r.graph, &machine, &r.schedule, replay_iters);
                summary.replay_iterations += u64::from(replay_iters);
                summary.messages += replay.messages;
                let self_timed_ok = st.initiation_interval <= f64::from(r.best_length) + 1e-9;
                if algebraic && replay.is_valid() && self_timed_ok {
                    summary.passed += 1;
                }
            }
        }
    }
    // Also pass the communication-oblivious baselines through.
    for w in ccs_workloads::all_workloads() {
        let g = w.build();
        for machine in table11_machines() {
            let bl = oblivious_list_scheduling(&g, &machine).expect("legal");
            summary.schedules += 1;
            if validate(&g, &machine, &bl.schedule).is_ok()
                && replay_static(&g, &machine, &bl.schedule, replay_iters).is_valid()
            {
                summary.passed += 1;
            }
            let (br, retimed) = oblivious_rotation_scheduling(&g, &machine, 32).expect("legal");
            summary.schedules += 1;
            if validate(&retimed, &machine, &br.schedule).is_ok()
                && replay_static(&retimed, &machine, &br.schedule, replay_iters).is_valid()
            {
                summary.passed += 1;
            }
            summary.replay_iterations += 2 * u64::from(replay_iters);
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table11_shape_matches_paper() {
        let rows = table11();
        assert_eq!(rows.len(), 4); // 2 apps x 2 policies
        for row in &rows {
            assert_eq!(row.cells.len(), 5);
            for &(init, after) in &row.cells {
                assert!(
                    after <= init,
                    "{} {}: {} > {}",
                    row.application,
                    row.relax,
                    after,
                    init
                );
            }
        }
        // Relaxation dominates without-relaxation per app/machine.
        for app in ["Elliptic Filter", "Lattice Filter"] {
            let with = rows
                .iter()
                .find(|r| r.application == app && r.relax == "with")
                .unwrap();
            let without = rows
                .iter()
                .find(|r| r.application == app && r.relax == "w/o")
                .unwrap();
            for (w, wo) in with.cells.iter().zip(&without.cells) {
                assert!(w.1 <= wo.1, "{app}: with {} > w/o {}", w.1, wo.1);
            }
        }
        // Completely connected (column 0) is the shortest "after" cell
        // in the relaxed rows.
        for row in rows.iter().filter(|r| r.relax == "with") {
            let cc = row.cells[0].1;
            for &(_, after) in &row.cells[1..] {
                assert!(cc <= after, "{}: cc {} > {}", row.application, cc, after);
            }
        }
    }

    #[test]
    fn nineteen_node_shapes() {
        let results = nineteen_node();
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(r.compacted_len < r.startup_len, "{}", r.machine);
            assert!(r.startup_table.contains("pe1"));
            assert!(r.compacted_table.contains("pe1"));
        }
    }

    #[test]
    fn relaxation_trace_lengths() {
        let g = ccs_workloads::paper::fig1_example();
        let m = Machine::mesh(2, 2);
        let (with, without) = relaxation_trace(&g, &m, 10);
        assert_eq!(with.len(), 10);
        assert_eq!(without.len(), 10);
        // without relaxation: monotone non-increasing
        for w in without.windows(2) {
            assert!(w[1] <= w[0]);
        }
        // both reach at least the paper's 5
        assert!(with.iter().min().unwrap() <= &5);
    }

    #[test]
    fn priority_ablation_pf_competitive() {
        let rows = priority_ablation();
        assert!(!rows.is_empty());
        // PF must win or tie against FIFO in aggregate.
        let pf: u64 = rows.iter().map(|r| u64::from(r.lengths[0])).sum();
        let fifo: u64 = rows.iter().map(|r| u64::from(r.lengths[2])).sum();
        assert!(pf <= fifo, "PF {pf} worse than FIFO {fifo} in aggregate");
    }

    #[test]
    fn small_random_sweep_runs() {
        let rows = random_sweep(&[10], 3);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.mean_compacted <= r.mean_startup + 1e-9);
            assert!(r.mean_bound_gap >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn validation_summary_all_pass() {
        let s = validate_everything(4);
        assert_eq!(s.schedules, s.passed, "some schedules failed validation");
        assert!(s.schedules >= 7 * 5 * 2);
    }

    #[test]
    fn contention_only_slows_down() {
        for row in contention_study(12) {
            assert!(
                row.inflation() >= 1.0 - 1e-9,
                "{} on {}: contention sped things up?",
                row.workload,
                row.machine
            );
            assert!((0.0..=1.0).contains(&row.link_utilization));
        }
    }

    #[test]
    fn optimality_gap_orderings() {
        for row in optimality_gap(6) {
            if let Some(opt) = row.optimal {
                // Start-up (no retiming) can never beat the exact
                // no-retiming optimum; compaction (with retiming) can.
                assert!(row.startup >= opt, "seed {} on {}", row.seed, row.machine);
            }
            assert!(row.compacted <= row.startup);
        }
    }

    #[test]
    fn pe_scaling_monotone_and_bounded() {
        let rows = pe_scaling("lattice", 6);
        assert_eq!(rows.len(), 6);
        for w in rows.windows(2) {
            // More PEs on a completely connected machine never hurt by
            // much; allow small heuristic noise but enforce the floor.
            assert!(u64::from(w[1].length) >= w[1].bound);
        }
        // 1 PE serializes everything: length >= total work.
        assert!(rows[0].length as u64 >= 20);
    }
}

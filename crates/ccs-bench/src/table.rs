//! Minimal fixed-width text tables for the experiment binaries.

/// A simple left-padded text table with a header row.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns: first column left-aligned, the
    /// rest right-aligned (matching the paper's numeric tables).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", cells[i], w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["machine", "len"]);
        t.row(["ring", "12"]).row(["completely connected", "5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("machine"));
        assert!(lines[2].starts_with("ring"));
        // numeric column right-aligned
        assert!(lines[2].ends_with("12"));
        assert!(lines[3].ends_with(" 5"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }
}

//! Diffing `bench_hotpath` reports into a perf / fingerprint
//! trajectory.
//!
//! The repo keeps one `BENCH_prN.json` per landed perf-relevant PR.
//! [`analyze`] lines a sequence of those reports up chronologically and
//! extracts:
//!
//! * **fingerprint drift** — any schedule fingerprint that changes
//!   between two adjacent reports.  Fingerprints hash every placement,
//!   so drift means the scheduler's *semantics* moved, which must
//!   always be a deliberate, documented decision;
//! * **timing regressions** — any experiment whose median wall time
//!   grows by more than the caller's threshold between adjacent
//!   reports (timings are machine-dependent, so the threshold is
//!   generous by default and CI pins the machine type).
//!
//! The `bench-report` binary renders the trajectory as a table and
//! exits nonzero when either list is non-empty — the CI drift gate.

use crate::table::TextTable;
use serde::Value;
use std::collections::BTreeMap;

/// BENCH sections this differ gates: each is parsed out of every
/// report and compared across the trajectory.  The consumer side of
/// the `bench-section-gated` drift pass — together with
/// [`UNGATED_SECTIONS`] it must cover `BENCH_SECTIONS` exactly
/// (declared in `bench_hotpath`).
pub const GATED_SECTIONS: [&str; 3] = ["timings_ms", "fingerprints", "bounds"];

/// BENCH sections deliberately not diffed, with the reason on record:
///
/// * `version`, `seeds` — run provenance; labels, not measurements;
/// * `schedule_lengths` — subsumed by `fingerprints` (any length
///   change moves the placement hash) and rendered by `bench-report`'s
///   sweep table instead;
/// * `metrics`, `cells` — per-run counter registries; byte-stable but
///   schema-fluid, diffed on demand with `ledger-diff` rather than
///   gated here;
/// * `candidate_scan_speedup` — intra-run A/B ratio, not comparable
///   across trajectory points;
/// * `baseline_timings_ms`, `speedup`, `fingerprint_mismatches` —
///   derived from a `--baseline` run's own diff; gating them would
///   double-count the baseline comparison.
pub const UNGATED_SECTIONS: [&str; 9] = [
    "version",
    "seeds",
    "schedule_lengths",
    "metrics",
    "cells",
    "candidate_scan_speedup",
    "baseline_timings_ms",
    "speedup",
    "fingerprint_mismatches",
];

/// The parts of one `bench_hotpath` JSON report the differ cares
/// about.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Display label (usually the file name).
    pub label: String,
    /// `timings_ms`: experiment key -> median wall ms.
    pub timings: BTreeMap<String, f64>,
    /// `fingerprints`: schedule key -> FNV-1a placement hash.
    pub fingerprints: BTreeMap<String, String>,
    /// `bounds`: schedule key -> optimality gap in percent (empty for
    /// reports predating the `bounds` section).
    pub gaps: BTreeMap<String, f64>,
}

impl BenchReport {
    /// Extracts the diffable sections from a parsed report.
    ///
    /// Unknown extra keys are ignored so old and new report formats
    /// (with or without `metrics` / `cells`) diff against each other.
    pub fn parse(label: &str, v: &Value) -> Result<Self, String> {
        let mut timings = BTreeMap::new();
        match v.get("timings_ms") {
            Some(Value::Object(fields)) => {
                for (k, val) in fields {
                    let ms = val
                        .as_f64()
                        .ok_or_else(|| format!("{label}: timings_ms[{k:?}] is not a number"))?;
                    timings.insert(k.clone(), ms);
                }
            }
            _ => return Err(format!("{label}: missing `timings_ms` object")),
        }
        let mut fingerprints = BTreeMap::new();
        match v.get("fingerprints") {
            Some(Value::Object(fields)) => {
                for (k, val) in fields {
                    let fp = val
                        .as_str()
                        .ok_or_else(|| format!("{label}: fingerprints[{k:?}] is not a string"))?;
                    fingerprints.insert(k.clone(), fp.to_string());
                }
            }
            _ => return Err(format!("{label}: missing `fingerprints` object")),
        }
        // The `bounds` section arrived later than `timings_ms` and
        // `fingerprints`; its absence means an old report, not an
        // error, so the trajectory can span the introduction point.
        let mut gaps = BTreeMap::new();
        if let Some(Value::Object(fields)) = v.get("bounds") {
            for (k, val) in fields {
                let pct = val
                    .get("gap_pct")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("{label}: bounds[{k:?}] has no numeric gap_pct"))?;
                gaps.insert(k.clone(), pct);
            }
        }
        Ok(BenchReport {
            label: label.to_string(),
            timings,
            fingerprints,
            gaps,
        })
    }
}

/// A schedule fingerprint that changed between two adjacent reports.
#[derive(Clone, Debug, PartialEq)]
pub struct Drift {
    /// Schedule key (`workload/machine`).
    pub key: String,
    /// Labels of the two reports the drift happened between.
    pub between: (String, String),
    /// Fingerprint in the earlier report.
    pub from: String,
    /// Fingerprint in the later report.
    pub to: String,
}

/// A timing that slowed down past the threshold between two adjacent
/// reports.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Experiment key.
    pub key: String,
    /// Labels of the two reports the regression happened between.
    pub between: (String, String),
    /// Median ms in the earlier report.
    pub from_ms: f64,
    /// Median ms in the later report.
    pub to_ms: f64,
    /// Slowdown in percent (`(to/from - 1) * 100`).
    pub pct: f64,
}

/// An optimality gap (`bounds` section) that grew between two adjacent
/// reports.  Gaps fold deterministic schedule lengths against static
/// lower bounds, so like fingerprints they only move when scheduler
/// semantics (or the bound engine) move — any growth is a finding.
#[derive(Clone, Debug, PartialEq)]
pub struct GapGrowth {
    /// Schedule key (`workload/machine`).
    pub key: String,
    /// Labels of the two reports the growth happened between.
    pub between: (String, String),
    /// Gap percent in the earlier report.
    pub from_pct: f64,
    /// Gap percent in the later report.
    pub to_pct: f64,
}

/// The analyzed trajectory over a chronological report sequence.
#[derive(Clone, Debug, Default)]
pub struct Trajectory {
    /// The reports, in the order given.
    pub reports: Vec<BenchReport>,
    /// Every fingerprint change between adjacent reports.
    pub drifts: Vec<Drift>,
    /// Every timing regression past the threshold between adjacent
    /// reports.
    pub regressions: Vec<Regression>,
    /// Every optimality gap that grew between adjacent reports.
    pub gap_growths: Vec<GapGrowth>,
}

impl Trajectory {
    /// `true` when the gate should fail.
    pub fn failed(&self) -> bool {
        !self.drifts.is_empty() || !self.regressions.is_empty() || !self.gap_growths.is_empty()
    }
}

/// Compares each adjacent pair of `reports`; a timing counts as a
/// regression when it grows by more than `max_regression_pct` percent.
///
/// Keys that appear in only one of the two reports are skipped: new
/// experiments and new schedules may be added freely, and removed ones
/// stop being compared.
pub fn analyze(reports: Vec<BenchReport>, max_regression_pct: f64) -> Trajectory {
    let mut t = Trajectory {
        reports,
        ..Default::default()
    };
    for pair in t.reports.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        for (key, fp_a) in &a.fingerprints {
            if let Some(fp_b) = b.fingerprints.get(key) {
                if fp_a != fp_b {
                    t.drifts.push(Drift {
                        key: key.clone(),
                        between: (a.label.clone(), b.label.clone()),
                        from: fp_a.clone(),
                        to: fp_b.clone(),
                    });
                }
            }
        }
        for (key, &g_a) in &a.gaps {
            if let Some(&g_b) = b.gaps.get(key) {
                if g_b > g_a + 1e-9 {
                    t.gap_growths.push(GapGrowth {
                        key: key.clone(),
                        between: (a.label.clone(), b.label.clone()),
                        from_pct: g_a,
                        to_pct: g_b,
                    });
                }
            }
        }
        for (key, &ms_a) in &a.timings {
            if let Some(&ms_b) = b.timings.get(key) {
                if ms_a > 0.0 {
                    let pct = (ms_b / ms_a - 1.0) * 100.0;
                    if pct > max_regression_pct {
                        t.regressions.push(Regression {
                            key: key.clone(),
                            between: (a.label.clone(), b.label.clone()),
                            from_ms: ms_a,
                            to_ms: ms_b,
                            pct,
                        });
                    }
                }
            }
        }
    }
    t
}

/// Renders the trajectory: one timing table (experiments × reports,
/// with the overall first→last speedup), then the drift and regression
/// findings.
pub fn render(t: &Trajectory) -> String {
    let mut out = String::new();
    if t.reports.is_empty() {
        return "no reports\n".to_string();
    }

    let mut header: Vec<String> = vec!["experiment (ms)".to_string()];
    header.extend(t.reports.iter().map(|r| r.label.clone()));
    header.push("speedup".to_string());
    let mut table = TextTable::new(header);
    let mut keys: Vec<&String> = t.reports.iter().flat_map(|r| r.timings.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let mut row = vec![key.clone()];
        for r in &t.reports {
            row.push(match r.timings.get(key) {
                Some(ms) => format!("{ms:.2}"),
                None => "-".to_string(),
            });
        }
        let first = t.reports.iter().find_map(|r| r.timings.get(key));
        let last = t.reports.iter().rev().find_map(|r| r.timings.get(key));
        row.push(match (first, last) {
            (Some(&f), Some(&l)) if l > 0.0 => format!("{:.2}x", f / l),
            _ => "-".to_string(),
        });
        table.row(row);
    }
    out.push_str(&table.render());

    if t.drifts.is_empty() {
        out.push_str("fingerprints: stable across the trajectory\n");
    } else {
        for d in &t.drifts {
            out.push_str(&format!(
                "FINGERPRINT DRIFT {}: {} -> {} between {} and {}\n",
                d.key, d.from, d.to, d.between.0, d.between.1
            ));
        }
    }
    for g in &t.gap_growths {
        out.push_str(&format!(
            "GAP GROWTH {}: {:.1}% -> {:.1}% vs the static bound between {} and {}\n",
            g.key, g.from_pct, g.to_pct, g.between.0, g.between.1
        ));
    }
    for r in &t.regressions {
        out.push_str(&format!(
            "TIMING REGRESSION {}: {:.2} ms -> {:.2} ms (+{:.0}%) between {} and {}\n",
            r.key, r.from_ms, r.to_ms, r.pct, r.between.0, r.between.1
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(label: &str, ms: f64, fp: &str) -> BenchReport {
        BenchReport {
            label: label.to_string(),
            timings: [("exp".to_string(), ms)].into_iter().collect(),
            fingerprints: [("fig1/mesh".to_string(), fp.to_string())]
                .into_iter()
                .collect(),
            gaps: [("fig1/mesh".to_string(), 5.0)].into_iter().collect(),
        }
    }

    #[test]
    fn parse_extracts_sections_and_ignores_extras() {
        let v: Value = serde_json::from_str(
            r#"{"version":"0.1.0","timings_ms":{"a":1.5},
                "fingerprints":{"k":"deadbeef"},"metrics":{},"cells":[]}"#,
        )
        .unwrap();
        let r = BenchReport::parse("x", &v).unwrap();
        assert_eq!(r.timings["a"], 1.5);
        assert_eq!(r.fingerprints["k"], "deadbeef");
        assert!(r.gaps.is_empty(), "old report without bounds parses");
        assert!(BenchReport::parse("x", &Value::Object(vec![])).is_err());
    }

    #[test]
    fn parse_extracts_bounds_gaps() {
        let v: Value = serde_json::from_str(
            r#"{"timings_ms":{},"fingerprints":{},
                "bounds":{"fig1/mesh":{"bound":10,"kind":"resource",
                          "best":12,"gap":2,"gap_pct":20.0}}}"#,
        )
        .unwrap();
        let r = BenchReport::parse("x", &v).unwrap();
        assert_eq!(r.gaps["fig1/mesh"], 20.0);
    }

    #[test]
    fn stable_trajectory_passes() {
        let t = analyze(vec![report("a", 10.0, "f"), report("b", 9.0, "f")], 25.0);
        assert!(!t.failed());
        let text = render(&t);
        assert!(text.contains("fingerprints: stable"), "{text}");
        assert!(text.contains("1.11x"), "{text}");
    }

    #[test]
    fn drift_and_regression_detected() {
        let t = analyze(vec![report("a", 10.0, "f1"), report("b", 20.0, "f2")], 25.0);
        assert!(t.failed());
        assert_eq!(t.drifts.len(), 1);
        assert_eq!(t.drifts[0].key, "fig1/mesh");
        assert_eq!(t.regressions.len(), 1);
        assert!((t.regressions[0].pct - 100.0).abs() < 1e-9);
        let text = render(&t);
        assert!(text.contains("FINGERPRINT DRIFT"), "{text}");
        assert!(text.contains("TIMING REGRESSION"), "{text}");
    }

    #[test]
    fn gap_growth_fails_the_gate_shrink_passes() {
        let mut a = report("a", 10.0, "f");
        let mut b = report("b", 10.0, "f");
        b.gaps.insert("fig1/mesh".to_string(), 8.0);
        let t = analyze(vec![a.clone(), b], 100.0);
        assert!(t.failed());
        assert_eq!(t.gap_growths.len(), 1);
        assert_eq!(t.gap_growths[0].to_pct, 8.0);
        assert!(render(&t).contains("GAP GROWTH"), "{}", render(&t));

        // Shrinking (or equal) gaps are fine, as is a key missing on
        // either side (old reports have no bounds section at all).
        let mut c = report("c", 10.0, "f");
        c.gaps.insert("fig1/mesh".to_string(), 2.0);
        a.gaps.clear();
        let t = analyze(vec![a, report("b", 10.0, "f"), c], 100.0);
        assert!(!t.failed());
    }

    #[test]
    fn disjoint_keys_are_skipped() {
        let mut b = report("b", 10.0, "f");
        b.timings = [("other".to_string(), 99.0)].into_iter().collect();
        b.fingerprints.clear();
        let t = analyze(vec![report("a", 10.0, "f"), b], 0.0);
        assert!(!t.failed());
    }

    #[test]
    fn adjacent_pairs_not_first_vs_last() {
        // 10 -> 12 -> 10: no adjacent step exceeds 25%, so no finding
        // even though first vs last is flat.
        let t = analyze(
            vec![
                report("a", 10.0, "f"),
                report("b", 12.0, "f"),
                report("c", 10.0, "f"),
            ],
            25.0,
        );
        assert!(!t.failed());
        // But 10 -> 14 in one step fails at 25%.
        let t = analyze(vec![report("a", 10.0, "f"), report("b", 14.0, "f")], 25.0);
        assert_eq!(t.regressions.len(), 1);
    }
}

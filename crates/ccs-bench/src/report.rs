//! Machine-readable experiment report: one JSON document aggregating
//! every experiment, for archival and regression diffing.

use crate::experiments;
use serde::Serialize;

/// The full report (`exp_full_report` emits it as JSON).
#[derive(Clone, Debug, Serialize)]
pub struct FullReport {
    /// Tool version (crate version at compile time).
    pub version: &'static str,
    /// E9: Table 11 cells.
    pub table11: Vec<Table11Json>,
    /// E4-E8: 19-node lengths per machine.
    pub nineteen_node: Vec<NineteenJson>,
    /// E11: priority ablation rows.
    pub priority: Vec<PriorityJson>,
    /// E12: random sweep aggregates.
    pub sweep: Vec<SweepJson>,
    /// E13: validation summary.
    pub validation: ValidationJson,
    /// E17: multi-row rotation aggregates.
    pub multirow: Vec<MultirowJson>,
}

/// JSON shape of one Table 11 row.
#[derive(Clone, Debug, Serialize)]
pub struct Table11Json {
    /// Application name.
    pub application: String,
    /// Relaxation policy label.
    pub relax: String,
    /// `(machine, init, after)` triples.
    pub cells: Vec<(String, u32, u32)>,
}

/// JSON shape of one 19-node row.
#[derive(Clone, Debug, Serialize)]
pub struct NineteenJson {
    /// Machine name.
    pub machine: String,
    /// Start-up length.
    pub startup: u32,
    /// Compacted length.
    pub compacted: u32,
}

/// JSON shape of one priority-ablation row.
#[derive(Clone, Debug, Serialize)]
pub struct PriorityJson {
    /// Workload name.
    pub workload: String,
    /// Machine name.
    pub machine: String,
    /// `PF` start-up length.
    pub pf: u32,
    /// Mobility-only start-up length.
    pub mobility: u32,
    /// FIFO start-up length.
    pub fifo: u32,
}

/// JSON shape of one sweep row.
#[derive(Clone, Debug, Serialize)]
pub struct SweepJson {
    /// Graph size.
    pub nodes: usize,
    /// Machine name.
    pub machine: String,
    /// Mean start-up length.
    pub startup: f64,
    /// Mean compacted length.
    pub compacted: f64,
    /// Mean oblivious-list length.
    pub oblivious: f64,
    /// Mean gap to the iteration-bound ceiling.
    pub bound_gap: f64,
}

/// JSON shape of the validation summary.
#[derive(Clone, Debug, Serialize)]
pub struct ValidationJson {
    /// Schedules checked.
    pub schedules: usize,
    /// Schedules passing all checks.
    pub passed: usize,
}

/// JSON shape of one multirow-ablation row.
#[derive(Clone, Debug, Serialize)]
pub struct MultirowJson {
    /// Workload name.
    pub workload: String,
    /// Machine name.
    pub machine: String,
    /// Best lengths rotating 1, 2 and 3 rows per pass.
    pub lengths: [u32; 3],
}

/// Runs the (fast subset of the) experiments and assembles the report.
///
/// `sweep_seeds` controls the E12 sample size; `replay_iters` the E13
/// replay depth.
pub fn collect(sweep_seeds: u64, replay_iters: u32) -> FullReport {
    let machines: Vec<String> = experiments::table11_machines()
        .iter()
        .map(|m| m.name().to_string())
        .collect();
    let table11 = experiments::table11()
        .into_iter()
        .map(|r| Table11Json {
            application: r.application.to_string(),
            relax: r.relax.to_string(),
            cells: machines
                .iter()
                .cloned()
                .zip(r.cells.iter().copied())
                .map(|(m, (i, a))| (m, i, a))
                .collect(),
        })
        .collect();
    let nineteen_node = experiments::nineteen_node()
        .into_iter()
        .map(|r| NineteenJson {
            machine: r.machine,
            startup: r.startup_len,
            compacted: r.compacted_len,
        })
        .collect();
    let priority = experiments::priority_ablation()
        .into_iter()
        .map(|r| PriorityJson {
            workload: r.workload.to_string(),
            machine: r.machine,
            pf: r.lengths[0],
            mobility: r.lengths[1],
            fifo: r.lengths[2],
        })
        .collect();
    let sweep = experiments::random_sweep(&[10, 20, 40], sweep_seeds)
        .into_iter()
        .map(|r| SweepJson {
            nodes: r.nodes,
            machine: r.machine,
            startup: r.mean_startup,
            compacted: r.mean_compacted,
            oblivious: r.mean_oblivious,
            bound_gap: r.mean_bound_gap,
        })
        .collect();
    let v = experiments::validate_everything(replay_iters);
    let multirow = experiments::multirow_ablation()
        .into_iter()
        .map(|r| MultirowJson {
            workload: r.workload.to_string(),
            machine: r.machine,
            lengths: r.lengths,
        })
        .collect();
    FullReport {
        version: env!("CARGO_PKG_VERSION"),
        table11,
        nineteen_node,
        priority,
        sweep,
        validation: ValidationJson {
            schedules: v.schedules,
            passed: v.passed,
        },
        multirow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_collects_and_serializes() {
        let report = collect(2, 3);
        assert_eq!(report.table11.len(), 4);
        assert_eq!(report.nineteen_node.len(), 5);
        assert_eq!(report.validation.schedules, report.validation.passed);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"table11\""));
        assert!(json.contains("Completely Connected 8"));
        // Parseable back as generic JSON.
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(value["sweep"].as_array().unwrap().len() >= 3);
    }
}

//! Machine-readable experiment report: one JSON document aggregating
//! every experiment, for archival and regression diffing — plus the
//! HTML renderers of the fleet observability layer: the BENCH
//! trajectory page (`bench_report --html`) and the sweep-cell →
//! dashboard-tile conversion (`exp_architectures --report`).
//!
//! The HTML side follows the `ccs-report` determinism contract: pure
//! functions of the inputs, no wall-clock content, every interpolation
//! through the audited `esc()` helper (the `escaped-html-output` lint
//! scans this file), artifacts validated by `report-check`.

use crate::driver::ProfiledCell;
use crate::experiments;
use crate::report_diff::Trajectory;
use ccs_report::grid::GridCellView;
use ccs_report::html::{self, esc};
use serde::Serialize;
use std::fmt::Write as _;

/// The full report (`exp_full_report` emits it as JSON).
#[derive(Clone, Debug, Serialize)]
pub struct FullReport {
    /// Tool version (crate version at compile time).
    pub version: &'static str,
    /// E9: Table 11 cells.
    pub table11: Vec<Table11Json>,
    /// E4-E8: 19-node lengths per machine.
    pub nineteen_node: Vec<NineteenJson>,
    /// E11: priority ablation rows.
    pub priority: Vec<PriorityJson>,
    /// E12: random sweep aggregates.
    pub sweep: Vec<SweepJson>,
    /// E13: validation summary.
    pub validation: ValidationJson,
    /// E17: multi-row rotation aggregates.
    pub multirow: Vec<MultirowJson>,
}

/// JSON shape of one Table 11 row.
#[derive(Clone, Debug, Serialize)]
pub struct Table11Json {
    /// Application name.
    pub application: String,
    /// Relaxation policy label.
    pub relax: String,
    /// `(machine, init, after)` triples.
    pub cells: Vec<(String, u32, u32)>,
}

/// JSON shape of one 19-node row.
#[derive(Clone, Debug, Serialize)]
pub struct NineteenJson {
    /// Machine name.
    pub machine: String,
    /// Start-up length.
    pub startup: u32,
    /// Compacted length.
    pub compacted: u32,
}

/// JSON shape of one priority-ablation row.
#[derive(Clone, Debug, Serialize)]
pub struct PriorityJson {
    /// Workload name.
    pub workload: String,
    /// Machine name.
    pub machine: String,
    /// `PF` start-up length.
    pub pf: u32,
    /// Mobility-only start-up length.
    pub mobility: u32,
    /// FIFO start-up length.
    pub fifo: u32,
}

/// JSON shape of one sweep row.
#[derive(Clone, Debug, Serialize)]
pub struct SweepJson {
    /// Graph size.
    pub nodes: usize,
    /// Machine name.
    pub machine: String,
    /// Mean start-up length.
    pub startup: f64,
    /// Mean compacted length.
    pub compacted: f64,
    /// Mean oblivious-list length.
    pub oblivious: f64,
    /// Mean gap to the iteration-bound ceiling.
    pub bound_gap: f64,
}

/// JSON shape of the validation summary.
#[derive(Clone, Debug, Serialize)]
pub struct ValidationJson {
    /// Schedules checked.
    pub schedules: usize,
    /// Schedules passing all checks.
    pub passed: usize,
}

/// JSON shape of one multirow-ablation row.
#[derive(Clone, Debug, Serialize)]
pub struct MultirowJson {
    /// Workload name.
    pub workload: String,
    /// Machine name.
    pub machine: String,
    /// Best lengths rotating 1, 2 and 3 rows per pass.
    pub lengths: [u32; 3],
}

/// Runs the (fast subset of the) experiments and assembles the report.
///
/// `sweep_seeds` controls the E12 sample size; `replay_iters` the E13
/// replay depth.
pub fn collect(sweep_seeds: u64, replay_iters: u32) -> FullReport {
    let machines: Vec<String> = experiments::table11_machines()
        .iter()
        .map(|m| m.name().to_string())
        .collect();
    let table11 = experiments::table11()
        .into_iter()
        .map(|r| Table11Json {
            application: r.application.to_string(),
            relax: r.relax.to_string(),
            cells: machines
                .iter()
                .cloned()
                .zip(r.cells.iter().copied())
                .map(|(m, (i, a))| (m, i, a))
                .collect(),
        })
        .collect();
    let nineteen_node = experiments::nineteen_node()
        .into_iter()
        .map(|r| NineteenJson {
            machine: r.machine,
            startup: r.startup_len,
            compacted: r.compacted_len,
        })
        .collect();
    let priority = experiments::priority_ablation()
        .into_iter()
        .map(|r| PriorityJson {
            workload: r.workload.to_string(),
            machine: r.machine,
            pf: r.lengths[0],
            mobility: r.lengths[1],
            fifo: r.lengths[2],
        })
        .collect();
    let sweep = experiments::random_sweep(&[10, 20, 40], sweep_seeds)
        .into_iter()
        .map(|r| SweepJson {
            nodes: r.nodes,
            machine: r.machine,
            startup: r.mean_startup,
            compacted: r.mean_compacted,
            oblivious: r.mean_oblivious,
            bound_gap: r.mean_bound_gap,
        })
        .collect();
    let v = experiments::validate_everything(replay_iters);
    let multirow = experiments::multirow_ablation()
        .into_iter()
        .map(|r| MultirowJson {
            workload: r.workload.to_string(),
            machine: r.machine,
            lengths: r.lengths,
        })
        .collect();
    FullReport {
        version: env!("CARGO_PKG_VERSION"),
        table11,
        nineteen_node,
        priority,
        sweep,
        validation: ValidationJson {
            schedules: v.schedules,
            passed: v.passed,
        },
        multirow,
    }
}

/// Flattens one sweep cell into the dashboard renderer's view: grid
/// identity and lengths from the [`crate::driver::GridCell`], counters
/// from the metrics registry, traffic from the communication profile.
pub fn grid_cell_view(p: &ProfiledCell) -> GridCellView {
    GridCellView {
        workload: p.cell.workload.to_string(),
        machine: p.cell.machine.clone(),
        config_ix: p.cell.config_ix,
        initial: p.cell.initial,
        best: p.cell.best,
        bound: u32::try_from(p.cell.bound).unwrap_or(u32::MAX),
        bound_kind: p.cell.bound_kind.to_string(),
        gap: u32::try_from(p.cell.gap()).unwrap_or(u32::MAX),
        gap_pct: p.cell.gap_pct(),
        counters: p
            .metrics
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        pes: p.profile.pes,
        edges: p.profile.edges.clone(),
        links: p.profile.links.clone(),
        routable: p.routable,
    }
}

/// Renders a sweep of profiled cells as the grid dashboard page.
pub fn grid_html(title: &str, cells: &[ProfiledCell]) -> String {
    let views: Vec<GridCellView> = cells.iter().map(grid_cell_view).collect();
    ccs_report::grid::render_grid_report(title, &views)
}

/// Sparkline geometry: fixed so every sparkline on the page aligns.
const SPARK_W: u32 = 360;
const SPARK_H: u32 = 72;
const SPARK_LEFT: u32 = 8;
const SPARK_TOP: u32 = 22;
const SPARK_PLOT_W: u32 = 280;
const SPARK_PLOT_H: u32 = 36;

/// One inline SVG sparkline over the report sequence.  `values[i]` is
/// the metric at report `i` (`None` when that report lacks the key);
/// `marks[i]` draws a drift marker at report `i`.  Coordinates are
/// formatted with fixed precision, so the output is deterministic.
fn spark_svg(caption: &str, values: &[Option<f64>], marks: &[bool]) -> String {
    let present: Vec<f64> = values.iter().flatten().copied().collect();
    let (lo, hi) = present
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = if hi > lo { hi - lo } else { 1.0 };
    let n = values.len().max(2);
    let x_of = |i: usize| -> f64 {
        f64::from(SPARK_LEFT) + f64::from(SPARK_PLOT_W) * i as f64 / (n - 1) as f64
    };
    let y_of = |v: f64| -> f64 {
        let frac = if present.is_empty() {
            0.5
        } else {
            (v - lo) / span
        };
        f64::from(SPARK_TOP) + f64::from(SPARK_PLOT_H) * (1.0 - frac)
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg class="spark" width="{SPARK_W}" height="{SPARK_H}" viewBox="0 0 {SPARK_W} {SPARK_H}" role="img">"#
    );
    let _ = writeln!(
        out,
        r#"  <style>.sp-t{{font:11px monospace;fill:#222}}.sp-s{{font:9px monospace;fill:#777}}</style>"#
    );
    let _ = writeln!(
        out,
        r#"  <text class="sp-t" x="4" y="13">{}</text>"#,
        esc(caption)
    );
    let points: Vec<String> = values
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.map(|v| format!("{:.1},{:.1}", x_of(i), y_of(v))))
        .collect();
    if points.len() >= 2 {
        let _ = writeln!(
            out,
            r##"  <polyline fill="none" stroke="#4a7ab5" stroke-width="1.5" points="{}"/>"##,
            points.join(" ")
        );
    }
    for (i, v) in values.iter().enumerate() {
        let Some(v) = v else { continue };
        let drifted = marks.get(i).copied().unwrap_or(false);
        let (r, fill) = if drifted {
            (4, "#b30000")
        } else {
            (2, "#2c4a70")
        };
        let _ = writeln!(
            out,
            r#"  <circle cx="{:.1}" cy="{:.1}" r="{r}" fill="{fill}"><title>{}</title></circle>"#,
            x_of(i),
            y_of(*v),
            esc(&format!(
                "report {}: {v:.2}{}",
                i + 1,
                if drifted { " (fingerprint drift)" } else { "" }
            ))
        );
    }
    if !present.is_empty() {
        let _ = writeln!(
            out,
            r#"  <text class="sp-s" x="{tx}" y="{ty}">{}</text>"#,
            esc(&format!("{hi:.2}")),
            tx = SPARK_LEFT + SPARK_PLOT_W + 6,
            ty = SPARK_TOP + 8
        );
        let _ = writeln!(
            out,
            r#"  <text class="sp-s" x="{tx}" y="{ty}">{}</text>"#,
            esc(&format!("{lo:.2}")),
            tx = SPARK_LEFT + SPARK_PLOT_W + 6,
            ty = SPARK_TOP + SPARK_PLOT_H
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Union of a metric's keys across the trajectory, in BTree order.
fn all_keys<'a>(
    t: &'a Trajectory,
    of: impl Fn(&'a crate::report_diff::BenchReport) -> &'a std::collections::BTreeMap<String, f64>,
) -> Vec<&'a String> {
    let mut keys: Vec<&String> = t.reports.iter().flat_map(|r| of(r).keys()).collect();
    keys.sort();
    keys.dedup();
    keys
}

fn timings_section(t: &Trajectory) -> String {
    let mut out = String::new();
    let no_marks = vec![false; t.reports.len()];
    for key in all_keys(t, |r| &r.timings) {
        let values: Vec<Option<f64>> = t
            .reports
            .iter()
            .map(|r| r.timings.get(key).copied())
            .collect();
        let first = values.iter().flatten().next();
        let last = values.iter().flatten().next_back();
        let speedup = match (first, last) {
            (Some(&f), Some(&l)) if l > 0.0 => format!("{:.2}x", f / l),
            _ => "-".to_string(),
        };
        out.push_str(&spark_svg(
            &format!("{key} (ms, first/last speedup {speedup})"),
            &values,
            &no_marks,
        ));
    }
    if out.is_empty() {
        out.push_str("<p>no timings recorded</p>\n");
    }
    out
}

fn gaps_section(t: &Trajectory) -> String {
    let mut out = String::new();
    for key in all_keys(t, |r| &r.gaps) {
        let values: Vec<Option<f64>> = t.reports.iter().map(|r| r.gaps.get(key).copied()).collect();
        // Drift markers land on the *later* report of each drifting
        // adjacent pair, matched by label.
        let marks: Vec<bool> = t
            .reports
            .iter()
            .map(|r| {
                t.drifts
                    .iter()
                    .any(|d| d.key == *key && d.between.1 == r.label)
            })
            .collect();
        out.push_str(&spark_svg(
            &format!("{key} (gap % vs static floor)"),
            &values,
            &marks,
        ));
    }
    if out.is_empty() {
        out.push_str("<p>no bounds sections recorded (reports predate the bound engine)</p>\n");
    }
    out
}

fn findings_section(t: &Trajectory) -> String {
    let mut out = String::new();
    if !t.failed() {
        out.push_str(
            "<p><span class=\"accepted\">gate passes</span>: fingerprints stable, \
             no gap growth, no timing regression past the threshold</p>\n",
        );
        return out;
    }
    for d in &t.drifts {
        let _ = writeln!(
            out,
            "<p><span class=\"reverted\">FINGERPRINT DRIFT</span> {}</p>",
            esc(&format!(
                "{}: {} -> {} between {} and {}",
                d.key, d.from, d.to, d.between.0, d.between.1
            ))
        );
    }
    for g in &t.gap_growths {
        let _ = writeln!(
            out,
            "<p><span class=\"reverted\">GAP GROWTH</span> {}</p>",
            esc(&format!(
                "{}: {:.1}% -> {:.1}% between {} and {}",
                g.key, g.from_pct, g.to_pct, g.between.0, g.between.1
            ))
        );
    }
    for r in &t.regressions {
        let _ = writeln!(
            out,
            "<p><span class=\"reverted\">TIMING REGRESSION</span> {}</p>",
            esc(&format!(
                "{}: {:.2} ms -> {:.2} ms (+{:.0}%) between {} and {}",
                r.key, r.from_ms, r.to_ms, r.pct, r.between.0, r.between.1
            ))
        );
    }
    out
}

/// Renders the analyzed BENCH trajectory as one self-contained HTML
/// page (`bench_report --html`): per-experiment timing sparklines,
/// per-schedule gap sparklines with fingerprint-drift markers, and the
/// gate findings.
pub fn trajectory_html(t: &Trajectory) -> String {
    let labels: Vec<&str> = t.reports.iter().map(|r| r.label.as_str()).collect();
    let meta = format!("{} report(s): {}", t.reports.len(), labels.join(" -> "));
    let sections = [
        (
            "timings",
            "Timing trajectory (median ms per experiment)",
            timings_section(t),
        ),
        (
            "gaps",
            "Optimality-gap trajectory (drift markers in red)",
            gaps_section(t),
        ),
        ("findings", "Gate findings", findings_section(t)),
    ];
    html::document("BENCH trajectory", &meta, &sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_collects_and_serializes() {
        let report = collect(2, 3);
        assert_eq!(report.table11.len(), 4);
        assert_eq!(report.nineteen_node.len(), 5);
        assert_eq!(report.validation.schedules, report.validation.passed);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"table11\""));
        assert!(json.contains("Completely Connected 8"));
        // Parseable back as generic JSON.
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(value["sweep"].as_array().unwrap().len() >= 3);
    }

    use crate::report_diff::{analyze, BenchReport};

    fn bench(label: &str, ms: f64, fp: &str, gap: f64) -> BenchReport {
        BenchReport {
            label: label.to_string(),
            timings: [("exp_hotpath".to_string(), ms)].into_iter().collect(),
            fingerprints: [("fig1/mesh".to_string(), fp.to_string())]
                .into_iter()
                .collect(),
            gaps: [("fig1/mesh".to_string(), gap)].into_iter().collect(),
        }
    }

    #[test]
    fn trajectory_html_renders_sparklines_and_passes_check() {
        let t = analyze(
            vec![
                bench("BENCH_pr1.json", 12.0, "aa", 10.0),
                bench("BENCH_pr2.json", 9.0, "aa", 5.0),
                bench("BENCH_pr3.json", 8.0, "bb", 5.0),
            ],
            1000.0,
        );
        let html = trajectory_html(&t);
        assert!(html.contains("<section id=\"timings\">"), "{html}");
        assert!(
            html.contains("exp_hotpath (ms, first/last speedup 1.50x)"),
            "{html}"
        );
        assert!(html.contains("fig1/mesh (gap % vs static floor)"), "{html}");
        // The aa -> bb drift marks the third report in red.
        assert!(html.contains("fingerprint drift"), "{html}");
        assert!(html.contains("FINGERPRINT DRIFT"), "{html}");
        ccs_report::check::check_html(&html).expect("trajectory page passes report-check");
        assert_eq!(html, trajectory_html(&t), "deterministic");
    }

    #[test]
    fn clean_trajectory_reports_a_passing_gate() {
        let t = analyze(
            vec![
                bench("BENCH_pr1.json", 10.0, "aa", 5.0),
                bench("BENCH_pr2.json", 9.0, "aa", 5.0),
            ],
            1000.0,
        );
        let html = trajectory_html(&t);
        assert!(html.contains("gate passes"), "{html}");
        assert!(!html.contains("FINGERPRINT DRIFT"), "{html}");
        ccs_report::check::check_html(&html).expect("valid");
    }

    #[test]
    fn spark_svg_handles_gaps_and_hostile_captions() {
        let svg = spark_svg(
            "a < b & c",
            &[Some(1.0), None, Some(3.0)],
            &[false, false, true],
        );
        assert!(svg.contains("a &lt; b &amp; c"), "{svg}");
        assert!(!svg.contains("a < b"), "{svg}");
        assert!(svg.contains("<polyline"), "{svg}");
        // Two plotted points + the min/max labels; the None is skipped.
        assert_eq!(svg.matches("<circle").count(), 2, "{svg}");
        assert!(svg.contains("#b30000"), "drift mark rendered: {svg}");
        // Single-point series renders no polyline but still validates.
        let one = spark_svg("one", &[Some(2.0)], &[false]);
        assert!(!one.contains("<polyline"), "{one}");
    }

    #[test]
    fn grid_html_renders_one_tile_per_profiled_cell() {
        use ccs_core::CompactConfig;
        use ccs_topology::Machine;
        use ccs_workloads::Workload;
        let workloads: Vec<Workload> = ccs_workloads::all_workloads()
            .into_iter()
            .filter(|w| w.name == "fig1")
            .collect();
        let machines = vec![Machine::mesh(2, 2), Machine::complete(4)];
        let configs = vec![CompactConfig::default()];
        let cells = crate::driver::compact_grid_profiled(&workloads, &machines, &configs);
        let html = grid_html("fig1 sweep", &cells);
        assert!(html.contains("data-grid-cells=\"2\""), "{html}");
        assert!(html.contains("data-cell=\"fig1/2-D Mesh 2x2/0\""), "{html}");
        let facts = ccs_report::check::check_html(&html).expect("grid page passes report-check");
        assert_eq!(facts.grid_cells, 2);
        assert_eq!(html, grid_html("fig1 sweep", &cells), "deterministic");
    }
}

//! E15 (extension) — how far is the heuristic from optimal?  Random
//! 5-node instances are solved exactly (branch-and-bound, no retiming)
//! and compared against the §3 start-up heuristic (no retiming, like
//! the exact solver) and full cyclo-compaction (with retiming, which
//! may legitimately beat the no-retiming optimum).
//!
//! Usage: `exp_optimality_gap [instances]` (default 25).

use ccs_bench::experiments::optimality_gap;
use ccs_bench::TextTable;

fn main() {
    let count: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    println!("=== optimality gap on {count} random 5-node instances ===\n");
    let rows = optimality_gap(count);
    let mut table = TextTable::new(["seed", "machine", "optimal", "start-up", "compacted"]);
    let mut startup_optimal = 0usize;
    let mut compact_beats_opt = 0usize;
    let mut proven = 0usize;
    for r in &rows {
        table.row([
            r.seed.to_string(),
            r.machine.clone(),
            r.optimal.map_or("?".into(), |o| o.to_string()),
            r.startup.to_string(),
            r.compacted.to_string(),
        ]);
        if let Some(opt) = r.optimal {
            proven += 1;
            if r.startup == opt {
                startup_optimal += 1;
            }
            if r.compacted < opt {
                compact_beats_opt += 1;
            }
        }
    }
    println!("{}", table.render());
    println!("instances with proven optimum: {proven}/{}", rows.len());
    println!("start-up heuristic already optimal: {startup_optimal}/{proven}");
    println!(
        "cyclo-compaction beats the no-retiming optimum (via loop pipelining): {compact_beats_opt}/{proven}"
    );
}

//! E1/E3 — regenerates the paper's running example artifacts:
//! Figure 1(b) (the graph), Figure 6(b)/2(a) (start-up schedule),
//! Figures 2(b)-3(b) (the compaction passes), Figure 1(c)/4 (retimed
//! graphs after the first and final passes).

use ccs_core::{cyclo_compact, CompactConfig};
use ccs_schedule::validate;
use ccs_sim::replay_static;
use ccs_topology::Machine;

fn main() {
    let g = ccs_workloads::paper::fig1_example();
    let machine = Machine::mesh(2, 2);

    println!("=== Figure 1(b): the 6-node CSDFG ===");
    print!("{g}");
    println!("\n=== Figure 1(a): the machine ===\n{machine}");

    // One pass only: Figures 2(b)/1(c).
    let one = cyclo_compact(
        &g,
        &machine,
        CompactConfig {
            passes: 1,
            ..Default::default()
        },
    )
    .expect("legal");
    println!(
        "\n=== Figure 2(a)/6(b): start-up schedule, {} control steps ===",
        one.initial_length
    );
    println!("{}", one.initial.render(|v| g.name(v).to_string()));
    println!(
        "=== after pass 1 (Figure 3(a) analogue), {} control steps ===",
        one.best_length
    );
    println!("{}", one.schedule.render(|v| one.graph.name(v).to_string()));
    println!("=== Figure 1(c): delays after rotating A ===");
    for e in one.graph.deps() {
        let (u, v) = one.graph.endpoints(e);
        println!(
            "  {} -> {}  d={}",
            one.graph.name(u),
            one.graph.name(v),
            one.graph.delay(e)
        );
    }

    // Full compaction: Figure 3(b)/4.
    let full = cyclo_compact(&g, &machine, CompactConfig::default()).expect("legal");
    println!(
        "\n=== full cyclo-compaction: {} -> {} control steps (paper reached 5) ===",
        full.initial_length, full.best_length
    );
    println!(
        "{}",
        full.schedule.render(|v| full.graph.name(v).to_string())
    );
    println!("=== Figure 4 analogue: final retimed delays ===");
    for e in full.graph.deps() {
        let (u, v) = full.graph.endpoints(e);
        println!(
            "  {} -> {}  d={}",
            full.graph.name(u),
            full.graph.name(v),
            full.graph.delay(e)
        );
    }

    validate(&full.graph, &machine, &full.schedule).expect("valid");
    assert!(replay_static(&full.graph, &machine, &full.schedule, 500).is_valid());
    println!("\n[ok] schedule validated algebraically and by 500-iteration replay");
}

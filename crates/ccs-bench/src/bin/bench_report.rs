//! `bench-report` — diffs a chronological sequence of `bench_hotpath`
//! JSON reports into a perf / fingerprint trajectory.
//!
//! ```text
//! bench_report [--max-regression PCT] [--html OUT.html] BENCH_pr1.json BENCH_pr3.json ...
//! ```
//!
//! Prints the timing table (one column per report, first→last speedup)
//! and every finding, then a summary line naming exactly the report
//! files the gate ran over — so a CI log shows *what* was gated, not
//! just whether it passed.  `--html` additionally renders the
//! trajectory as a self-contained sparkline page (validated by
//! `report-check`).  Exit codes: `0` clean, `1` fingerprint drift or a
//! timing regression worse than `PCT` percent between adjacent reports
//! (default 100, i.e. 2x — timings are machine-dependent, so the
//! default only catches catastrophic slowdowns; CI can tighten it),
//! `2` usage/IO error — including an empty or single-file sequence,
//! which has no adjacent pairs and therefore gates nothing.

use ccs_bench::report::trajectory_html;
use ccs_bench::report_diff::{analyze, render, BenchReport};
use std::process::ExitCode;

const USAGE: &str =
    "usage: bench_report [--max-regression PCT] [--html OUT.html] <report.json>... (need >= 2)";

fn main() -> ExitCode {
    let mut max_regression_pct = 100.0f64;
    let mut html_out: Option<String> = None;
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-regression" => {
                max_regression_pct = match args.next().and_then(|v| v.parse().ok()) {
                    Some(p) => p,
                    None => {
                        eprintln!("--max-regression needs a percentage");
                        return ExitCode::from(2);
                    }
                }
            }
            "--html" => {
                html_out = match args.next() {
                    Some(p) => Some(p),
                    None => {
                        eprintln!("--html needs an output path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            _ => paths.push(a),
        }
    }
    if paths.len() < 2 {
        eprintln!(
            "bench-report: {} report(s) given, nothing to gate",
            paths.len()
        );
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut reports = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-report: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench-report: {path}: not JSON: {e}");
                return ExitCode::from(2);
            }
        };
        match BenchReport::parse(path, &value) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("bench-report: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let trajectory = analyze(reports, max_regression_pct);
    print!("{}", render(&trajectory));
    if let Some(out) = &html_out {
        let html = trajectory_html(&trajectory);
        if let Err(e) = std::fs::write(out, &html) {
            eprintln!("bench-report: cannot write {out}: {e}");
            return ExitCode::from(2);
        }
        println!("html trajectory written to {out}");
    }
    let gated = paths.join(", ");
    if trajectory.failed() {
        eprintln!(
            "bench-report: FAILED over [{gated}] — {} drift(s), {} regression(s), \
             {} gap growth(s) (threshold {max_regression_pct}%)",
            trajectory.drifts.len(),
            trajectory.regressions.len(),
            trajectory.gap_growths.len()
        );
        ExitCode::FAILURE
    } else {
        println!("bench-report: OK over [{gated}] (threshold {max_regression_pct}%)");
        ExitCode::SUCCESS
    }
}

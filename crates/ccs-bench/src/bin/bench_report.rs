//! `bench-report` — diffs a chronological sequence of `bench_hotpath`
//! JSON reports into a perf / fingerprint trajectory.
//!
//! ```text
//! bench_report [--max-regression PCT] BENCH_pr1.json BENCH_pr3.json ...
//! ```
//!
//! Prints the timing table (one column per report, first→last speedup)
//! and every finding.  Exit codes: `0` clean, `1` fingerprint drift or
//! a timing regression worse than `PCT` percent between adjacent
//! reports (default 100, i.e. 2x — timings are machine-dependent, so
//! the default only catches catastrophic slowdowns; CI can tighten
//! it), `2` usage/IO error.

use ccs_bench::report_diff::{analyze, render, BenchReport};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut max_regression_pct = 100.0f64;
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-regression" => {
                max_regression_pct = match args.next().and_then(|v| v.parse().ok()) {
                    Some(p) => p,
                    None => {
                        eprintln!("--max-regression needs a percentage");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: bench_report [--max-regression PCT] <report.json>...");
                return ExitCode::from(2);
            }
            _ => paths.push(a),
        }
    }
    if paths.len() < 2 {
        eprintln!("usage: bench_report [--max-regression PCT] <report.json>... (need >= 2)");
        return ExitCode::from(2);
    }

    let mut reports = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-report: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench-report: {path}: not JSON: {e}");
                return ExitCode::from(2);
            }
        };
        match BenchReport::parse(path, &value) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("bench-report: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let trajectory = analyze(reports, max_regression_pct);
    print!("{}", render(&trajectory));
    if trajectory.failed() {
        eprintln!(
            "bench-report: {} drift(s), {} regression(s), {} gap growth(s) \
             (threshold {max_regression_pct}%)",
            trajectory.drifts.len(),
            trajectory.regressions.len(),
            trajectory.gap_growths.len()
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

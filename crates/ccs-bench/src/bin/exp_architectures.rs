//! E2 — regenerates the paper's Figure 5/8: the experiment machine
//! suite, with per-machine structural statistics and the link lists
//! (DOT output on request via `--dot`), plus a compacted-length grid of
//! every workload on every machine (the architecture comparison the
//! statistics exist to explain).
//!
//! `--report FILE` additionally runs the sweep profiled
//! (`compact_grid_profiled`) and writes the grid dashboard page: one
//! tile per workload × machine cell with a mini link-load heatmap,
//! gap-colored badge, and the cell's trace counters in the hover title.
//!
//! The stats rows and the workload × machine grid both run through the
//! deterministic parallel sweep driver (`ccs_bench::run_many` /
//! `ccs_bench::compact_grid`), so output — including the dashboard —
//! is identical at any `RAYON_NUM_THREADS`.

use ccs_bench::report::grid_html;
use ccs_bench::{compact_grid_profiled, run_many, TextTable};
use ccs_core::CompactConfig;
use ccs_topology::Machine;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut dot = false;
    let mut report_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dot" => dot = true,
            "--report" => {
                report_out = match args.next() {
                    Some(p) => Some(p),
                    None => {
                        eprintln!("--report needs an output path");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "unknown argument {other}; usage: exp_architectures [--dot] [--report FILE]"
                );
                return ExitCode::from(2);
            }
        }
    }
    let machines = vec![
        Machine::linear_array(8),
        Machine::ring(8),
        Machine::complete(8),
        Machine::mesh(4, 2),
        Machine::hypercube(3),
        // the paper's Figure 1(a) 4-PE mesh for completeness
        Machine::mesh(2, 2),
    ];

    // Structural statistics, one parallel cell per machine.
    let stats = run_many(machines.clone(), |m| {
        let max_deg = m.pes().map(|p| m.degree(p)).max().unwrap_or(0);
        [
            m.name().to_string(),
            m.num_pes().to_string(),
            m.links().len().to_string(),
            m.diameter().to_string(),
            format!("{:.2}", m.mean_distance()),
            max_deg.to_string(),
        ]
    });
    let mut table = TextTable::new([
        "machine",
        "PEs",
        "links",
        "diameter",
        "mean dist",
        "max degree",
    ]);
    for row in stats {
        table.row(row);
    }
    println!("=== Figure 5/8: experiment architectures ===\n");
    println!("{}", table.render());

    for m in &machines {
        println!("{}:", m.name());
        let links: Vec<String> = m
            .links()
            .iter()
            .map(|&(a, b)| format!("pe{}-pe{}", a + 1, b + 1))
            .collect();
        println!("  links: {}", links.join(" "));
        if dot {
            println!("{}", m.to_dot());
        }
    }

    // Compacted schedule length of every workload on every machine —
    // how the structural numbers above translate into schedules.  The
    // profiled sweep carries the same cells (same run, tee'd sinks),
    // so the text table and the dashboard always agree.
    let workloads = ccs_workloads::all_workloads();
    let profiled = compact_grid_profiled(&workloads, &machines, &[CompactConfig::default()]);
    let mut header = vec!["workload".to_string()];
    header.extend(machines.iter().map(|m| m.name().to_string()));
    let mut compacted = TextTable::new(header);
    for (wi, w) in workloads.iter().enumerate() {
        let mut row = vec![w.name.to_string()];
        for mi in 0..machines.len() {
            let cell = &profiled[wi * machines.len() + mi].cell;
            row.push(format!("{}->{}", cell.initial, cell.best));
        }
        compacted.row(row);
    }
    println!("\n=== compacted lengths (startup -> best) per architecture ===\n");
    println!("{}", compacted.render());

    if let Some(out) = &report_out {
        let html = grid_html(
            "architecture sweep: every workload on every machine",
            &profiled,
        );
        if let Err(e) = std::fs::write(out, &html) {
            eprintln!("exp_architectures: cannot write {out}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "grid dashboard ({} cell(s)) written to {out}",
            profiled.len()
        );
    }
    ExitCode::SUCCESS
}

//! E2 — regenerates the paper's Figure 5/8: the experiment machine
//! suite, with per-machine structural statistics and the link lists
//! (DOT output on request via `--dot`), plus a compacted-length grid of
//! every workload on every machine (the architecture comparison the
//! statistics exist to explain).
//!
//! The stats rows and the workload × machine grid both run through the
//! deterministic parallel sweep driver (`ccs_bench::run_many` /
//! `ccs_bench::compact_grid`), so output is identical at any
//! `RAYON_NUM_THREADS`.

use ccs_bench::{compact_grid, run_many, TextTable};
use ccs_core::CompactConfig;
use ccs_topology::Machine;

fn main() {
    let dot = std::env::args().any(|a| a == "--dot");
    let machines = vec![
        Machine::linear_array(8),
        Machine::ring(8),
        Machine::complete(8),
        Machine::mesh(4, 2),
        Machine::hypercube(3),
        // the paper's Figure 1(a) 4-PE mesh for completeness
        Machine::mesh(2, 2),
    ];

    // Structural statistics, one parallel cell per machine.
    let stats = run_many(machines.clone(), |m| {
        let max_deg = m.pes().map(|p| m.degree(p)).max().unwrap_or(0);
        [
            m.name().to_string(),
            m.num_pes().to_string(),
            m.links().len().to_string(),
            m.diameter().to_string(),
            format!("{:.2}", m.mean_distance()),
            max_deg.to_string(),
        ]
    });
    let mut table = TextTable::new([
        "machine",
        "PEs",
        "links",
        "diameter",
        "mean dist",
        "max degree",
    ]);
    for row in stats {
        table.row(row);
    }
    println!("=== Figure 5/8: experiment architectures ===\n");
    println!("{}", table.render());

    for m in &machines {
        println!("{}:", m.name());
        let links: Vec<String> = m
            .links()
            .iter()
            .map(|&(a, b)| format!("pe{}-pe{}", a + 1, b + 1))
            .collect();
        println!("  links: {}", links.join(" "));
        if dot {
            println!("{}", m.to_dot());
        }
    }

    // Compacted schedule length of every workload on every machine —
    // how the structural numbers above translate into schedules.
    let workloads = ccs_workloads::all_workloads();
    let grid = compact_grid(&workloads, &machines, &[CompactConfig::default()]);
    let mut header = vec!["workload".to_string()];
    header.extend(machines.iter().map(|m| m.name().to_string()));
    let mut compacted = TextTable::new(header);
    for (wi, w) in workloads.iter().enumerate() {
        let mut row = vec![w.name.to_string()];
        for mi in 0..machines.len() {
            let cell = &grid[wi * machines.len() + mi];
            row.push(format!("{}->{}", cell.initial, cell.best));
        }
        compacted.row(row);
    }
    println!("\n=== compacted lengths (startup -> best) per architecture ===\n");
    println!("{}", compacted.render());
}

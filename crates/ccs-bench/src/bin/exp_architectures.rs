//! E2 — regenerates the paper's Figure 5/8: the experiment machine
//! suite, with per-machine structural statistics and the link lists
//! (DOT output on request via `--dot`).

use ccs_bench::TextTable;
use ccs_topology::Machine;

fn main() {
    let dot = std::env::args().any(|a| a == "--dot");
    let machines = [
        Machine::linear_array(8),
        Machine::ring(8),
        Machine::complete(8),
        Machine::mesh(4, 2),
        Machine::hypercube(3),
        // the paper's Figure 1(a) 4-PE mesh for completeness
        Machine::mesh(2, 2),
    ];

    let mut table = TextTable::new(["machine", "PEs", "links", "diameter", "mean dist", "max degree"]);
    for m in &machines {
        let max_deg = m.pes().map(|p| m.degree(p)).max().unwrap_or(0);
        table.row([
            m.name().to_string(),
            m.num_pes().to_string(),
            m.links().len().to_string(),
            m.diameter().to_string(),
            format!("{:.2}", m.mean_distance()),
            max_deg.to_string(),
        ]);
    }
    println!("=== Figure 5/8: experiment architectures ===\n");
    println!("{}", table.render());

    for m in &machines {
        println!("{}:", m.name());
        let links: Vec<String> = m
            .links()
            .iter()
            .map(|&(a, b)| format!("pe{}-pe{}", a + 1, b + 1))
            .collect();
        println!("  links: {}", links.join(" "));
        if dot {
            println!("{}", m.to_dot());
        }
    }
}

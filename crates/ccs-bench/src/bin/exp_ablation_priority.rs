//! E11 — ablation of the §3 design choice: the communication-sensitive
//! priority function `PF` against mobility-only (classic critical-path
//! list scheduling) and FIFO ready lists, measured by start-up
//! schedule length.

use ccs_bench::experiments::priority_ablation;
use ccs_bench::TextTable;

fn main() {
    println!("=== priority-function ablation: start-up schedule lengths ===\n");
    let rows = priority_ablation();
    let mut table = TextTable::new(["workload", "machine", "PF", "mobility", "FIFO"]);
    let mut sums = [0u64; 3];
    for r in &rows {
        table.row([
            r.workload.to_string(),
            r.machine.clone(),
            r.lengths[0].to_string(),
            r.lengths[1].to_string(),
            r.lengths[2].to_string(),
        ]);
        for (sum, &len) in sums.iter_mut().zip(&r.lengths) {
            *sum += u64::from(len);
        }
    }
    println!("{}", table.render());
    println!(
        "aggregate control steps: PF {}, mobility-only {}, FIFO {}",
        sums[0], sums[1], sums[2]
    );
    println!(
        "[{}] PF is no worse than FIFO in aggregate",
        if sums[0] <= sums[2] { "ok" } else { "FAIL" }
    );
}

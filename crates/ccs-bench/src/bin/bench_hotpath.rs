//! Hot-path regression benchmark: wall-times the compaction-heavy
//! experiments and fingerprints every schedule on the paper suite, so
//! optimization PRs can prove both "faster" and "bit-identical".
//!
//! Usage:
//!
//! ```text
//! bench_hotpath [--json PATH] [--baseline PATH] [--seeds N] [--reps N]
//! ```
//!
//! * `--json PATH` — write the machine-readable report (timings in ms,
//!   schedule lengths, placement fingerprints) to `PATH`.
//! * `--baseline PATH` — also read a previous report from `PATH`,
//!   embed its timings as `baseline_timings_ms`, compute per-experiment
//!   `speedup`, and fail (exit 1) if any schedule fingerprint differs.
//! * `--seeds N` — random-sweep seeds per cell (default 10).
//! * `--reps N` — timing repetitions, median reported (default 3).
//!
//! A `candidate_scan/*` section times the candidate-scan engine
//! against the [`ccs_core::ScanPolicy::Reference`] full sweep on the
//! many-PE machines and asserts — every invocation — that both land on
//! bit-identical schedules; the per-machine ratio is reported as
//! `candidate_scan_speedup`.
//!
//! All timed sections run with **no trace sink installed** (asserted),
//! so the numbers measure the uninstrumented hot path.  A separate,
//! untimed instrumented run afterwards feeds a
//! [`ccs_trace::metrics::MetricsSink`] and lands in the report as the
//! `"metrics"` section (per-phase counters + wall-time histograms),
//! and a metered grid sweep lands as `"cells"` (per-cell counters,
//! deterministic — the part `bench-report` diffs between reports).

use std::collections::BTreeMap;
use std::time::Instant;

use ccs_bench::experiments::random_sweep;
use ccs_core::{cyclo_compact, CompactConfig};
use ccs_topology::Machine;
use ccs_trace::metrics::MetricsSink;
use ccs_workloads::random::{random_csdfg, RandomGraphConfig};
use serde_json::Value;

/// FNV-1a 64-bit over a byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }
}

/// Stable fingerprint of a schedule: every placement (node-id order)
/// plus the table dimensions and reported length.
fn fingerprint(s: &ccs_schedule::Schedule) -> String {
    let mut h = Fnv::new();
    h.write_u64(s.num_pes() as u64);
    h.write_u64(u64::from(s.length()));
    for (node, slot) in s.placements() {
        h.write_u64(node.index() as u64);
        h.write_u64(u64::from(slot.pe.0));
        h.write_u64(u64::from(slot.start));
        h.write_u64(u64::from(slot.duration));
    }
    format!("{:016x}", h.0)
}

fn machine_suite() -> Vec<Machine> {
    vec![
        Machine::linear_array(8),
        Machine::mesh(4, 2),
        Machine::complete(8),
        Machine::hypercube(3),
    ]
}

/// Every root section a BENCH report may carry, in emission order.
/// The last three appear only when `--baseline` is given.
///
/// This is the producer side of the `bench-section-gated` drift pass:
/// `report_diff` must claim each section as gated or ungated, and the
/// assert in `main` keeps this declaration honest against the report
/// actually assembled.
const BENCH_SECTIONS: [&str; 12] = [
    "version",
    "seeds",
    "timings_ms",
    "schedule_lengths",
    "fingerprints",
    "bounds",
    "metrics",
    "cells",
    "candidate_scan_speedup",
    "baseline_timings_ms",
    "speedup",
    "fingerprint_mismatches",
];

/// Medians `reps` timed runs of `f`, returning (median ms, last output).
fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut out = None;
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        out = Some(f());
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], out.expect("at least one rep"))
}

fn main() {
    let mut json_path = None;
    let mut baseline_path = None;
    let mut seeds = 10u64;
    let mut reps = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = args.next(),
            "--baseline" => baseline_path = args.next(),
            "--seeds" => seeds = args.next().and_then(|v| v.parse().ok()).expect("--seeds N"),
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    // Overhead guard: every timed/fingerprinted section below must run
    // the uninstrumented scheduler path.  If something installed a
    // sink (and leaked its guard), the timings and the zero-overhead
    // claim would be meaningless — fail loudly instead.
    assert!(
        !ccs_trace::installed(),
        "trace sink installed before timed sections"
    );

    // --- Schedule fingerprints & lengths: full paper suite x machines.
    // Each cell also gets its static lower bound (`ccs-bounds`) so the
    // report carries the bound/gap trajectory alongside the lengths —
    // `bench-report` gates gap growth the way it gates fingerprints.
    let mut lengths: BTreeMap<String, (u32, u32)> = BTreeMap::new();
    let mut prints: BTreeMap<String, String> = BTreeMap::new();
    let mut bounds: BTreeMap<String, (u64, &'static str, u32)> = BTreeMap::new();
    for w in ccs_workloads::all_workloads() {
        let g = w.build();
        for machine in machine_suite() {
            let r = cyclo_compact(&g, &machine, CompactConfig::default()).expect("legal");
            let key = format!("{}/{}", w.name, machine.name());
            let bs = ccs_bounds::compute_bounds(&g, &machine);
            let (bv, bk) = match bs.best() {
                Some(c) => (c.value, c.kind.name()),
                None => (0, "none"),
            };
            bounds.insert(key.clone(), (bv, bk, r.best_length));
            lengths.insert(key.clone(), (r.initial_length, r.best_length));
            prints.insert(key, fingerprint(&r.schedule));
        }
    }

    // --- Timed experiments.
    let mut timings: BTreeMap<String, f64> = BTreeMap::new();

    let (t, rows) = time_median(reps, || random_sweep(&[24, 48], seeds));
    timings.insert(format!("random_sweep_24_48x{seeds}"), t);
    let mut h = Fnv::new();
    for row in &rows {
        h.write(row.machine.as_bytes());
        h.write_u64(row.nodes as u64);
        h.write_u64(row.mean_startup.to_bits());
        h.write_u64(row.mean_compacted.to_bits());
        h.write_u64(row.mean_oblivious.to_bits());
        h.write_u64(row.mean_bound_gap.to_bits());
    }
    prints.insert("random_sweep_rows".into(), format!("{:016x}", h.0));

    let big = random_csdfg(
        RandomGraphConfig {
            nodes: 64,
            back_edges: 21,
            ..Default::default()
        },
        7,
    );
    let mesh = Machine::mesh(8, 8);
    let (t, r) = time_median(reps, || {
        cyclo_compact(&big, &mesh, CompactConfig::default()).expect("legal")
    });
    timings.insert("compact_mesh8x8_64n".into(), t);
    prints.insert("compact_mesh8x8_64n".into(), fingerprint(&r.schedule));
    lengths.insert("random64/mesh8x8".into(), (r.initial_length, r.best_length));

    let wide = Machine::complete(32);
    let (t, r) = time_median(reps, || {
        cyclo_compact(&big, &wide, CompactConfig::default()).expect("legal")
    });
    timings.insert("compact_complete32_64n".into(), t);
    prints.insert("compact_complete32_64n".into(), fingerprint(&r.schedule));
    lengths.insert(
        "random64/complete32".into(),
        (r.initial_length, r.best_length),
    );

    // --- Candidate-scan microbenchmark: the engine (cost rows + bitset
    // occupancy + branch-and-bound pruning) against the reference full
    // sweep, on the many-PE machines where the per-PE scan dominates.
    // Both runs must land on bit-identical schedules (asserted here, on
    // every machine, every invocation) — the engine is a pure speedup.
    let mut scan_speedups: Vec<(String, Value)> = Vec::new();
    for (slug, machine) in [
        ("mesh4x4", Machine::mesh(4, 4)),
        ("complete16", Machine::complete(16)),
        ("mesh8x8", Machine::mesh(8, 8)),
        ("complete32", Machine::complete(32)),
    ] {
        let config_with = |scan| CompactConfig {
            remap: ccs_core::RemapConfig {
                scan,
                ..Default::default()
            },
            ..Default::default()
        };
        let (t_eng, r_eng) = time_median(reps, || {
            cyclo_compact(&big, &machine, config_with(ccs_core::ScanPolicy::Engine)).expect("legal")
        });
        let (t_ref, r_ref) = time_median(reps, || {
            cyclo_compact(&big, &machine, config_with(ccs_core::ScanPolicy::Reference))
                .expect("legal")
        });
        let fp = fingerprint(&r_eng.schedule);
        assert_eq!(
            fp,
            fingerprint(&r_ref.schedule),
            "candidate-scan engine diverged from the reference sweep on {}",
            machine.name()
        );
        timings.insert(format!("candidate_scan/{slug}/engine"), t_eng);
        timings.insert(format!("candidate_scan/{slug}/reference"), t_ref);
        prints.insert(format!("candidate_scan/{slug}"), fp);
        scan_speedups.push((slug.into(), Value::Float(t_ref / t_eng)));
    }

    let (t, _) = time_median(reps, || {
        let mut total = 0u64;
        for w in ccs_workloads::all_workloads() {
            let g = w.build();
            for machine in machine_suite() {
                let r = cyclo_compact(&g, &machine, CompactConfig::default()).expect("legal");
                total += u64::from(r.best_length);
            }
        }
        total
    });
    timings.insert("paper_suite_compaction".into(), t);
    assert!(
        !ccs_trace::installed(),
        "trace sink installed after timed sections"
    );

    // --- Instrumented run (untimed): per-phase metrics registry.
    // One pass over the paper suite plus the 64-node mesh compaction,
    // with a MetricsSink collecting the structured event stream.  This
    // deliberately happens *after* every timed section so the sink
    // never perturbs the numbers above.
    let ((), sink) = ccs_trace::with_sink(MetricsSink::new(), || {
        for w in ccs_workloads::all_workloads() {
            let g = w.build();
            for machine in machine_suite() {
                let _ = cyclo_compact(&g, &machine, CompactConfig::default()).expect("legal");
            }
        }
        let _ = cyclo_compact(&big, &mesh, CompactConfig::default()).expect("legal");
    });
    let metrics = sink.into_metrics();

    // --- Per-cell metered sweep (untimed): one row per workload x
    // machine with the cell's own counter registry.  Counters are pure
    // event-stream folds, so this section is byte-identical across
    // runs and thread counts and diffable by `bench-report`.
    let cells = ccs_bench::compact_grid_metered(
        &ccs_workloads::all_workloads(),
        &machine_suite(),
        &[CompactConfig::default()],
    );
    let cells_value = Value::Array(cells.iter().map(ccs_bench::MeteredCell::to_value).collect());
    assert!(!ccs_trace::installed(), "metered sweep leaked a trace sink");

    // --- Assemble the report.
    let mut root: Vec<(String, Value)> = vec![
        (
            "version".into(),
            Value::String(env!("CARGO_PKG_VERSION").into()),
        ),
        ("seeds".into(), Value::UInt(seeds)),
        (
            "timings_ms".into(),
            Value::Object(
                timings
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Float(*v)))
                    .collect(),
            ),
        ),
        (
            "schedule_lengths".into(),
            Value::Object(
                lengths
                    .iter()
                    .map(|(k, (i, b))| {
                        (
                            k.clone(),
                            Value::Object(vec![
                                ("initial".into(), Value::UInt(u64::from(*i))),
                                ("best".into(), Value::UInt(u64::from(*b))),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "fingerprints".into(),
            Value::Object(
                prints
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::String(v.clone())))
                    .collect(),
            ),
        ),
        (
            "bounds".into(),
            Value::Object(
                bounds
                    .iter()
                    .map(|(k, (bv, bk, best))| {
                        let gap = u64::from(*best).saturating_sub(*bv);
                        let gap_pct = if *bv > 0 {
                            gap as f64 * 100.0 / *bv as f64
                        } else {
                            0.0
                        };
                        (
                            k.clone(),
                            Value::Object(vec![
                                ("bound".into(), Value::UInt(*bv)),
                                ("kind".into(), Value::String((*bk).into())),
                                ("best".into(), Value::UInt(u64::from(*best))),
                                ("gap".into(), Value::UInt(gap)),
                                ("gap_pct".into(), Value::Float(gap_pct)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        ("metrics".into(), metrics.to_value()),
        ("cells".into(), cells_value),
        (
            "candidate_scan_speedup".into(),
            Value::Object(scan_speedups),
        ),
    ];

    let mut mismatches = 0usize;
    if let Some(path) = &baseline_path {
        let text = std::fs::read_to_string(path).expect("read baseline");
        let base: Value = serde_json::from_str(&text).expect("parse baseline");
        if let Value::Object(fields) = &base["fingerprints"] {
            for (key, val) in fields {
                let ours = prints.get(key).map(String::as_str);
                let theirs = val.as_str();
                if ours != theirs {
                    eprintln!(
                        "FINGERPRINT MISMATCH {key}: baseline {theirs:?} vs current {ours:?}"
                    );
                    mismatches += 1;
                }
            }
        }
        let mut base_t: Vec<(String, Value)> = Vec::new();
        let mut speedups: Vec<(String, Value)> = Vec::new();
        if let Value::Object(fields) = &base["timings_ms"] {
            for (key, val) in fields {
                if let Some(ms) = val.as_f64() {
                    base_t.push((key.clone(), Value::Float(ms)));
                    if let Some(now) = timings.get(key) {
                        speedups.push((key.clone(), Value::Float(ms / now)));
                    }
                }
            }
        }
        root.push(("baseline_timings_ms".into(), Value::Object(base_t)));
        root.push(("speedup".into(), Value::Object(speedups)));
        root.push((
            "fingerprint_mismatches".into(),
            Value::UInt(mismatches as u64),
        ));
    }

    for (key, _) in &root {
        assert!(
            BENCH_SECTIONS.contains(&key.as_str()),
            "BENCH root section {key:?} is not declared in BENCH_SECTIONS; \
             declare it so the bench-section-gated lint can see it"
        );
    }
    let report = Value::Object(root);
    let text = serde_json::to_string_pretty(&report).expect("serialize report");
    match &json_path {
        Some(path) => {
            std::fs::write(path, format!("{text}\n")).expect("write report");
            eprintln!("wrote {path}");
        }
        None => println!("{text}"),
    }

    for (k, v) in &timings {
        eprintln!("{k:<28} {v:>10.2} ms");
    }
    if mismatches > 0 {
        eprintln!("{mismatches} fingerprint mismatch(es) vs baseline");
        std::process::exit(1);
    }
}

//! E14 (extension) — probes the paper's contention-free communication
//! assumption (Definition 3.5: "multiple channels so that there is no
//! congestion"): every compacted schedule is executed self-timed under
//! both the contention-free model and a one-message-per-link model,
//! and the initiation-interval inflation is reported.
//!
//! Usage: `exp_contention [iterations]` (default 50).

use ccs_bench::experiments::contention_study;
use ccs_bench::TextTable;

fn main() {
    let iters: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    println!("=== link-contention study ({iters} self-timed iterations) ===\n");
    let rows = contention_study(iters);
    let mut table = TextTable::new([
        "workload",
        "machine",
        "free II",
        "contended II",
        "inflation",
        "link util",
        "hottest link",
    ]);
    let mut worst: f64 = 1.0;
    for r in &rows {
        worst = worst.max(r.inflation());
        table.row([
            r.workload.to_string(),
            r.machine.clone(),
            format!("{:.2}", r.free_ii),
            format!("{:.2}", r.contended_ii),
            format!("{:.2}x", r.inflation()),
            format!("{:.0}%", r.link_utilization * 100.0),
            match r.hottest {
                Some(((a, b), cycles)) => format!("pe{a}-pe{b} ({cycles}c)"),
                None => "-".to_string(),
            },
        ]);
    }
    println!("{}", table.render());
    println!("worst inflation observed: {worst:.2}x");
    println!("interpretation: inflation near 1.0x means the paper's no-congestion");
    println!("assumption is harmless for these schedules; larger values mark");
    println!("workload/machine pairs where link arbitration would bite.");
}

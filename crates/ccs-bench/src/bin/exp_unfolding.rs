//! E18 (extension) — unfolding vs. rotation: schedule `unfold(G, f)`
//! for growing factors and compare the per-original-iteration cost
//! against the iteration bound.  Rotation (the paper's mechanism)
//! pipelines *without* growing the graph; unfolding grows the graph to
//! expose the same inter-iteration parallelism structurally.
//!
//! Usage: `exp_unfolding [max-factor]` (default 3).

use ccs_bench::experiments::unfolding_study;
use ccs_bench::TextTable;

fn main() {
    let max_factor: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("=== unfolding study on completely connected 8 ===\n");
    let rows = unfolding_study(max_factor);
    let mut table = TextTable::new(["workload", "factor", "length", "per iteration", "bound"]);
    for r in &rows {
        table.row([
            r.workload.to_string(),
            r.factor.to_string(),
            r.length.to_string(),
            format!("{:.2}", r.per_iteration),
            format!("{:.2}", r.bound),
        ]);
    }
    println!("{}", table.render());
    println!("per-iteration cost approaches the bound as the factor grows;");
    println!("rotation alone (factor 1) already closes most of the gap on");
    println!("these kernels — the paper's retiming-based pipelining captures");
    println!("the parallelism without the graph blow-up.");
}

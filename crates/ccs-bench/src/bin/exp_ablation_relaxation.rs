//! E10 — ablation of the §4 design choice: remapping **with** vs
//! **without** relaxation.  Prints per-pass schedule-length traces so
//! the different search dynamics are visible (without-relaxation is
//! monotone and stalls; with-relaxation oscillates through longer
//! intermediate schedules and escapes local minima).

use ccs_bench::experiments::relaxation_trace;
use ccs_model::transform::slowdown;
use ccs_topology::Machine;
use ccs_workloads::OpTimes;

fn main() {
    let workloads: Vec<(&str, ccs_model::Csdfg)> = vec![
        ("fig1 (6n)", ccs_workloads::paper::fig1_example()),
        ("fig7 (19n)", ccs_workloads::paper::fig7_example()),
        (
            "elliptic s3 (34n)",
            slowdown(
                &ccs_workloads::filters::elliptic_wave_filter(OpTimes::default()),
                3,
            ),
        ),
    ];
    let machines = [
        Machine::linear_array(8),
        Machine::mesh(4, 2),
        Machine::complete(8),
    ];

    println!("=== relaxation ablation: per-pass schedule length (32 passes) ===\n");
    for (name, g) in &workloads {
        for machine in &machines {
            let (with, without) = relaxation_trace(g, machine, 32);
            let fmt = |t: &[u32]| {
                t.iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            println!("{name} on {}:", machine.name());
            println!(
                "  with:    {}  (best {})",
                fmt(&with),
                with.iter().min().unwrap()
            );
            println!(
                "  without: {}  (best {})",
                fmt(&without),
                without.iter().min().unwrap()
            );
        }
        println!();
    }
    println!("expected shape (paper Table 11): the relaxed traces may grow");
    println!("mid-search but reach equal or shorter best lengths.");
}

//! E17 (extension) — ablation of the rotation granularity: the paper
//! rotates exactly the first schedule row per pass; this experiment
//! also rotates the first two and three rows (a legal generalization
//! of Definition 4.1) and compares the best compacted lengths.

use ccs_bench::experiments::multirow_ablation;
use ccs_bench::TextTable;

fn main() {
    println!("=== multi-row rotation ablation ===\n");
    let rows = multirow_ablation();
    let mut table = TextTable::new(["workload", "machine", "1 row", "2 rows", "3 rows"]);
    let mut sums = [0u64; 3];
    for r in &rows {
        table.row([
            r.workload.to_string(),
            r.machine.clone(),
            r.lengths[0].to_string(),
            r.lengths[1].to_string(),
            r.lengths[2].to_string(),
        ]);
        for (sum, &len) in sums.iter_mut().zip(&r.lengths) {
            *sum += u64::from(len);
        }
    }
    println!("{}", table.render());
    println!(
        "aggregate best lengths: 1 row {}, 2 rows {}, 3 rows {}",
        sums[0], sums[1], sums[2]
    );
    println!("the paper's single-row rotation searches finer; multi-row passes");
    println!("move faster per pass but can skip over good intermediate states.");
}

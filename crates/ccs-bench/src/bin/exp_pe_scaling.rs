//! E16 (extension) — processor-count scaling: compacted schedule
//! length of a workload on completely connected machines of 1..=N PEs,
//! against the PE-independent iteration-bound floor.  Shows where
//! adding processors stops helping (the loop-carried cycles take
//! over).
//!
//! Usage: `exp_pe_scaling [workload] [max-pes]` (default `elliptic` 12).

use ccs_bench::experiments::pe_scaling;
use ccs_bench::TextTable;

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "elliptic".into());
    let max_pes: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    println!("=== PE scaling: {workload} on completely connected 1..={max_pes} ===\n");
    let rows = pe_scaling(&workload, max_pes);
    let mut table = TextTable::new(["PEs", "compacted length", "bound floor", "floor gap"]);
    for r in &rows {
        table.row([
            r.pes.to_string(),
            r.length.to_string(),
            r.bound.to_string(),
            format!("{:.2}x", f64::from(r.length) / r.bound as f64),
        ]);
    }
    println!("{}", table.render());
    let saturation = rows
        .windows(2)
        .find(|w| w[1].length >= w[0].length)
        .map(|w| w[0].pes)
        .unwrap_or(max_pes);
    println!("speedup saturates around {saturation} PEs (loop-carried cycles dominate).");
}

//! E12 — extension experiment: random-CSDFG sweep across graph sizes
//! and machines, reporting mean start-up / compacted / oblivious
//! lengths and the mean gap to the iteration-bound ceiling.
//! Parallelized across sweep cells with rayon.
//!
//! Usage: `exp_random_sweep [seeds-per-cell]` (default 20).

use ccs_bench::experiments::random_sweep;
use ccs_bench::TextTable;

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let sizes = [10usize, 20, 40, 80];
    println!(
        "=== random-graph sweep: sizes {:?}, {seeds} seeds per cell ===\n",
        sizes
    );
    let rows = random_sweep(&sizes, seeds);
    let mut table = TextTable::new([
        "nodes",
        "machine",
        "mean start-up",
        "mean compacted",
        "mean oblivious",
        "bound gap",
    ]);
    for r in &rows {
        table.row([
            r.nodes.to_string(),
            r.machine.clone(),
            format!("{:.1}", r.mean_startup),
            format!("{:.1}", r.mean_compacted),
            format!("{:.1}", r.mean_oblivious),
            format!("{:.2}x", r.mean_bound_gap),
        ]);
    }
    println!("{}", table.render());
    println!("bound gap = compacted length / ceil(iteration bound); 1.00x is optimal.");
    println!("expected shape: compacted < start-up <= oblivious on every row; the");
    println!("gap grows with graph size and interconnect sparsity.");
}

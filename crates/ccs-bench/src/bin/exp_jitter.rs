//! E19 (extension) — timing-jitter robustness: self-timed execution of
//! compacted schedules with task latencies inflated by up to 1..3
//! random cycles per instance.  Reports the mean initiation-interval
//! inflation — does tight packing make execution fragile?
//!
//! Usage: `exp_jitter [iterations] [seeds]` (defaults 60, 10).

use ccs_bench::experiments::jitter_study;
use ccs_bench::TextTable;

fn main() {
    let iterations: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let seeds: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("=== jitter robustness ({iterations} iterations, {seeds} seeds) ===\n");
    let rows = jitter_study(iterations, seeds);
    let mut table = TextTable::new(["workload", "machine", "nominal II", "+1 cycle", "+2", "+3"]);
    for r in &rows {
        table.row([
            r.workload.to_string(),
            r.machine.clone(),
            format!("{:.2}", r.nominal),
            format!("{:.2}", r.jittered[0]),
            format!("{:.2}", r.jittered[1]),
            format!("{:.2}", r.jittered[2]),
        ]);
    }
    println!("{}", table.render());
    println!("self-timed execution absorbs jitter up to the schedule's slack;");
    println!("inflation beyond +jitter/2 per critical task marks brittle bindings.");
}

//! E4-E8 — regenerates Tables 1-10: the 19-node example (Figure 7,
//! reconstructed — see DESIGN.md §3) scheduled on the five 8-PE
//! machines; for each machine the start-up table (odd-numbered tables)
//! and the cyclo-compacted table (even-numbered tables).

use ccs_bench::experiments::nineteen_node;

fn main() {
    println!("=== Tables 1-10: 19-node example on the paper's 8-PE machines ===");
    println!("(graph reconstructed; compare shapes, not cells — see DESIGN.md §3)\n");
    for r in nineteen_node() {
        println!("---------------- {} ----------------", r.machine);
        println!("Start-up schedule ({} control steps):", r.startup_len);
        println!("{}", r.startup_table);
        println!(
            "After cyclo-compaction ({} control steps):",
            r.compacted_len
        );
        println!("{}", r.compacted_table);
    }
    println!("paper shape: start-up lengths 12-15, compacted 5-7,");
    println!("completely connected shortest after compaction.");
}

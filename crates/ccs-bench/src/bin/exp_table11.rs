//! E9 — regenerates the paper's Table 11: elliptic + lattice filters
//! with slow-down factor 3, both remapping policies, across the five
//! architectures (completely connected, linear array, ring, 2-D mesh,
//! 3-cube), reporting `init` and `after` schedule lengths.

use ccs_bench::experiments::table11;
use ccs_bench::TextTable;

fn main() {
    println!("=== Table 11: applying cyclo-compaction on different architectures ===");
    println!("(filter graphs are the standard constructions, slow-down 3; compare");
    println!(" shape — who wins and by what factor — not absolute cells)\n");

    let rows = table11();
    let mut table = TextTable::new([
        "Applications",
        "relax",
        "com init",
        "com after",
        "lin init",
        "lin after",
        "rin init",
        "rin after",
        "2-d init",
        "2-d after",
        "hyp init",
        "hyp after",
    ]);
    for row in &rows {
        let mut cells = vec![row.application.to_string(), row.relax.to_string()];
        for &(init, after) in &row.cells {
            cells.push(init.to_string());
            cells.push(after.to_string());
        }
        table.row(cells);
    }
    println!("{}", table.render());

    println!("paper shape checks:");
    let relaxed: Vec<_> = rows.iter().filter(|r| r.relax == "with").collect();
    let strict: Vec<_> = rows.iter().filter(|r| r.relax == "w/o").collect();
    let rel_total: u32 = relaxed
        .iter()
        .flat_map(|r| r.cells.iter().map(|c| c.1))
        .sum();
    let str_total: u32 = strict
        .iter()
        .flat_map(|r| r.cells.iter().map(|c| c.1))
        .sum();
    println!(
        "  [{}] relaxation dominates without-relaxation (sum after: {} vs {})",
        if rel_total <= str_total { "ok" } else { "FAIL" },
        rel_total,
        str_total
    );
    let cc_best = relaxed
        .iter()
        .all(|r| r.cells[1..].iter().all(|c| r.cells[0].1 <= c.1));
    println!(
        "  [{}] completely connected yields the shortest relaxed schedules",
        if cc_best { "ok" } else { "FAIL" }
    );
    let all_improve = rows.iter().all(|r| r.cells.iter().all(|c| c.1 <= c.0));
    println!(
        "  [{}] compaction never lengthens a schedule",
        if all_improve { "ok" } else { "FAIL" }
    );
}

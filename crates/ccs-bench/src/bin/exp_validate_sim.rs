//! E13 — validation experiment: every workload x machine x policy
//! schedule (plus the baselines) is checked by the algebraic validator
//! AND replayed cycle-accurately in the simulator; self-timed
//! execution must not run slower than the static period.
//!
//! Usage: `exp_validate_sim [replay-iterations]` (default 20).

use ccs_bench::experiments::validate_everything;

fn main() {
    let iters: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    println!("=== simulator cross-validation ({iters} replay iterations each) ===\n");
    let s = validate_everything(iters);
    println!("schedules checked:        {}", s.schedules);
    println!("passed all three checks:  {}", s.passed);
    println!("replay iterations total:  {}", s.replay_iterations);
    println!("messages simulated:       {}", s.messages);
    if s.passed == s.schedules {
        println!("\n[ok] every schedule is valid under checker, replay, and self-timed run");
    } else {
        println!(
            "\n[FAIL] {} schedules failed validation",
            s.schedules - s.passed
        );
        std::process::exit(1);
    }
}

//! Emits the full machine-readable experiment report as JSON on
//! stdout — for archival, dashboards, and regression diffing.
//!
//! Usage: `exp_full_report [sweep-seeds] [replay-iterations]`
//! (defaults 10 and 10).

fn main() {
    let sweep_seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let replay_iters: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let report = ccs_bench::report::collect(sweep_seeds, replay_iters);
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
}

//! # ccs-bench
//!
//! The experiment harness of the reproduction: drivers that regenerate
//! every table and figure of the paper (see `DESIGN.md` §5 for the
//! experiment index), shared by the `exp_*` binaries and the Criterion
//! benches.
//!
//! Binaries (run with `cargo run -p ccs-bench --release --bin <name>`):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `exp_fig1_example` | Figures 1-4, 6 and the Figure 2/3 schedule tables |
//! | `exp_architectures` | Figures 5 and 8 (machine suite) |
//! | `exp_tables_19node` | Tables 1-10 (19-node example on 5 machines) |
//! | `exp_table11` | Table 11 (elliptic + lattice, both policies) |
//! | `exp_ablation_relaxation` | §4 relaxation design choice |
//! | `exp_ablation_priority` | §3 priority-function design choice |
//! | `exp_random_sweep` | extension: random-graph sweep |
//! | `exp_validate_sim` | simulator cross-validation of every schedule |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod experiments;
pub mod report;
pub mod report_diff;
pub mod table;

pub use driver::{
    compact_grid, compact_grid_metered, compact_grid_profiled, run_many, run_many_metered,
    GridCell, MeteredCell, ProfiledCell, Tee,
};
pub use experiments::*;
pub use table::TextTable;

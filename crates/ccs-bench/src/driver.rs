//! Deterministic parallel fan-out for experiment grids.
//!
//! Every experiment that sweeps *independent* scheduling problems —
//! workloads × machines × configs, random seeds × sizes, growing PE
//! counts — funnels through [`run_many`]: a rayon-parallel map whose
//! output order equals the input order at any thread count (the
//! workspace `rayon` stand-in concatenates per-chunk results in input
//! order, and upstream rayon's `collect` on an indexed iterator has the
//! same property).  Experiments therefore produce byte-identical
//! reports whether run with `RAYON_NUM_THREADS=1` or 64.
//!
//! [`compact_grid`] is the common special case: `cyclo_compact` over a
//! full workloads × machines × configs grid, row-major.

use ccs_core::{cyclo_compact, CompactConfig};
use ccs_topology::Machine;
use ccs_workloads::Workload;
use rayon::prelude::*;

/// Maps `f` over `inputs` in parallel; results come back in input
/// order regardless of thread count.
///
/// This is the only parallelism entry point the experiment harness
/// uses, so determinism arguments reduce to one place: cell functions
/// must be pure (no shared mutable state, no time/thread dependence),
/// and then the whole sweep is reproducible.
pub fn run_many<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    inputs.into_par_iter().map(f).collect()
}

/// One cell of a [`compact_grid`] sweep.
#[derive(Clone, Debug)]
pub struct GridCell {
    /// Workload registry name.
    pub workload: &'static str,
    /// Machine name.
    pub machine: String,
    /// Index into the `configs` slice passed to [`compact_grid`].
    pub config_ix: usize,
    /// Start-up schedule length.
    pub initial: u32,
    /// Best compacted schedule length.
    pub best: u32,
}

/// Runs `cyclo_compact` on every workload × machine × config cell in
/// parallel.  Result order is row-major — workloads outer, machines
/// middle, configs inner — independent of thread count.
pub fn compact_grid(
    workloads: &[Workload],
    machines: &[Machine],
    configs: &[CompactConfig],
) -> Vec<GridCell> {
    preflight(workloads, machines);
    let mut cells = Vec::with_capacity(workloads.len() * machines.len() * configs.len());
    for w in workloads {
        for m in machines {
            for (ci, c) in configs.iter().enumerate() {
                cells.push((w, m, ci, *c));
            }
        }
    }
    run_many(cells, |(w, m, ci, c)| {
        let g = w.build();
        let r = cyclo_compact(&g, m, c).expect("legal workload");
        GridCell {
            workload: w.name,
            machine: m.name().to_string(),
            config_ix: ci,
            initial: r.initial_length,
            best: r.best_length,
        }
    })
}

/// Pass A preflight: every workload x machine pair must be free of
/// analyzer *errors* before the sweep burns CPU on it.  Runs once per
/// grid, sequentially, outside every timed region — experiment
/// binaries call [`compact_grid`] from untimed setup code, and the
/// hot-path benchmark does not use grids at all.
///
/// # Panics
///
/// Panics with the rendered diagnostics when any pair has errors; an
/// experiment grid with an illegal cell would otherwise die later with
/// a less helpful message from inside the scheduler.
fn preflight(workloads: &[Workload], machines: &[Machine]) {
    for w in workloads {
        let g = w.build();
        for m in machines {
            let report = ccs_analyze::analyze(&g, m);
            assert!(
                !report.has_errors(),
                "preflight: workload {:?} on {} has analyzer errors:\n{}",
                w.name,
                m.name(),
                report.render_human()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_many_preserves_input_order() {
        let out = run_many((0..257usize).collect(), |i| i * 3);
        assert_eq!(out, (0..257).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn compact_grid_matches_sequential_loop() {
        let workloads: Vec<Workload> = ccs_workloads::all_workloads()
            .into_iter()
            .filter(|w| w.name == "fig1" || w.name == "iir")
            .collect();
        let machines = vec![Machine::linear_array(4), Machine::complete(4)];
        let configs = vec![CompactConfig::default()];
        let grid = compact_grid(&workloads, &machines, &configs);
        assert_eq!(grid.len(), 4);
        let mut ix = 0;
        for w in &workloads {
            for m in &machines {
                let r = cyclo_compact(&w.build(), m, configs[0]).expect("legal");
                assert_eq!(grid[ix].workload, w.name);
                assert_eq!(grid[ix].machine, m.name());
                assert_eq!(grid[ix].initial, r.initial_length);
                assert_eq!(grid[ix].best, r.best_length);
                ix += 1;
            }
        }
    }
}

//! Deterministic parallel fan-out for experiment grids.
//!
//! Every experiment that sweeps *independent* scheduling problems —
//! workloads × machines × configs, random seeds × sizes, growing PE
//! counts — funnels through [`run_many`]: a rayon-parallel map whose
//! output order equals the input order at any thread count (the
//! workspace `rayon` stand-in concatenates per-chunk results in input
//! order, and upstream rayon's `collect` on an indexed iterator has the
//! same property).  Experiments therefore produce byte-identical
//! reports whether run with `RAYON_NUM_THREADS=1` or 64.
//!
//! [`compact_grid`] is the common special case: `cyclo_compact` over a
//! full workloads × machines × configs grid, row-major.
//!
//! The `*_metered` variants run the same sweep with a per-cell
//! [`MetricsSink`] installed, so every cell comes back with the
//! scheduler's hot-path counters (edges swept, slots probed, traffic
//! attribution, ...).  Counters are pure event-stream folds, so the
//! metered report is as thread-count-invariant as the plain one;
//! metering is opt-in because installing a sink takes the instrumented
//! scheduler path.

use ccs_core::{cyclo_compact, CompactConfig};
use ccs_profile::{CommProfile, ProfileBuilder};
use ccs_topology::Machine;
use ccs_trace::metrics::{Metrics, MetricsSink};
use ccs_trace::{Event, Sink};
use ccs_workloads::Workload;
use rayon::prelude::*;
use serde::Value;

/// Maps `f` over `inputs` in parallel; results come back in input
/// order regardless of thread count.
///
/// This is the only parallelism entry point the experiment harness
/// uses, so determinism arguments reduce to one place: cell functions
/// must be pure (no shared mutable state, no time/thread dependence),
/// and then the whole sweep is reproducible.
pub fn run_many<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    inputs.into_par_iter().map(f).collect()
}

/// Like [`run_many`], but each cell runs with its own
/// [`MetricsSink`] installed and returns `(result, metrics)`.
///
/// The sink is installed per cell on whatever worker thread picks the
/// cell up, so no counters bleed between cells and the *counter* part
/// of every [`Metrics`] is identical at any thread count (histograms
/// hold wall-clock samples and are not).  Serialize per-cell summaries
/// with [`Metrics::counters_value`], never `to_value`, when the report
/// must be byte-stable.
pub fn run_many_metered<T, R, F>(inputs: Vec<T>, f: F) -> Vec<(R, Metrics)>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    run_many(inputs, |t| {
        let (r, sink) = ccs_trace::with_sink(MetricsSink::new(), || f(t));
        (r, sink.into_metrics())
    })
}

/// One cell of a [`compact_grid`] sweep.
#[derive(Clone, Debug)]
pub struct GridCell {
    /// Workload registry name.
    pub workload: &'static str,
    /// Machine name.
    pub machine: String,
    /// Index into the `configs` slice passed to [`compact_grid`].
    pub config_ix: usize,
    /// Start-up schedule length.
    pub initial: u32,
    /// Best compacted schedule length.
    pub best: u32,
    /// Strongest static lower bound on the period (`ccs-bounds`); 0 for
    /// an empty graph, where no bound applies.
    pub bound: u64,
    /// Name of the binding bound family (`cycle_ratio`, `resource`,
    /// `critical_path`, `communication`), or `none`.
    pub bound_kind: &'static str,
}

impl GridCell {
    /// Steps between the achieved period and the proven bound.
    pub fn gap(&self) -> u64 {
        u64::from(self.best).saturating_sub(self.bound)
    }

    /// The gap as a percentage of the bound (0.0 when no bound
    /// applies — an empty graph is trivially optimal).
    pub fn gap_pct(&self) -> f64 {
        if self.bound == 0 {
            0.0
        } else {
            self.gap() as f64 * 100.0 / self.bound as f64
        }
    }
}

/// One cell of a [`compact_grid_metered`] sweep: the plain cell plus
/// the scheduler's per-cell counter registry.
#[derive(Clone, Debug)]
pub struct MeteredCell {
    /// The schedule-length outcome, as in [`compact_grid`].
    pub cell: GridCell,
    /// Hot-path counters recorded while solving this cell.  Only the
    /// counters are deterministic; the wall-clock histograms are not.
    pub metrics: Metrics,
}

impl MeteredCell {
    /// Deterministic JSON summary of the cell: identity, lengths, and
    /// the counter registry (histograms deliberately excluded so the
    /// value is byte-identical across runs and thread counts).
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "workload".to_string(),
                Value::String(self.cell.workload.to_string()),
            ),
            (
                "machine".to_string(),
                Value::String(self.cell.machine.clone()),
            ),
            (
                "config_ix".to_string(),
                Value::UInt(self.cell.config_ix as u64),
            ),
            (
                "initial".to_string(),
                Value::UInt(u64::from(self.cell.initial)),
            ),
            ("best".to_string(), Value::UInt(u64::from(self.cell.best))),
            ("bound".to_string(), Value::UInt(self.cell.bound)),
            (
                "bound_kind".to_string(),
                Value::String(self.cell.bound_kind.to_string()),
            ),
            ("gap".to_string(), Value::UInt(self.cell.gap())),
            ("gap_pct".to_string(), Value::Float(self.cell.gap_pct())),
            ("counters".to_string(), self.metrics.counters_value()),
        ])
    }
}

/// Row-major (workload outer, machine middle, config inner) input list
/// for the grid sweeps.
fn grid_inputs<'a>(
    workloads: &'a [Workload],
    machines: &'a [Machine],
    configs: &[CompactConfig],
) -> Vec<(&'a Workload, &'a Machine, usize, CompactConfig)> {
    let mut cells = Vec::with_capacity(workloads.len() * machines.len() * configs.len());
    for w in workloads {
        for m in machines {
            for (ci, c) in configs.iter().enumerate() {
                cells.push((w, m, ci, *c));
            }
        }
    }
    cells
}

fn solve_cell(w: &Workload, m: &Machine, ci: usize, c: CompactConfig) -> GridCell {
    let g = w.build();
    let r = cyclo_compact(&g, m, c).expect("legal workload");
    let bounds = ccs_bounds::compute_bounds(&g, m);
    let (bound, bound_kind) = match bounds.best() {
        Some(cert) => (cert.value, cert.kind.name()),
        None => (0, "none"),
    };
    GridCell {
        workload: w.name,
        machine: m.name().to_string(),
        config_ix: ci,
        initial: r.initial_length,
        best: r.best_length,
        bound,
        bound_kind,
    }
}

/// Runs `cyclo_compact` on every workload × machine × config cell in
/// parallel.  Result order is row-major — workloads outer, machines
/// middle, configs inner — independent of thread count.
pub fn compact_grid(
    workloads: &[Workload],
    machines: &[Machine],
    configs: &[CompactConfig],
) -> Vec<GridCell> {
    preflight(workloads, machines);
    run_many(
        grid_inputs(workloads, machines, configs),
        |(w, m, ci, c)| solve_cell(w, m, ci, c),
    )
}

/// [`compact_grid`] with a per-cell [`MetricsSink`]: same cells, same
/// order, plus the scheduler's counter registry for every cell.
///
/// Because the counters fold the (deterministic) event stream, a
/// metered grid serialized via [`MeteredCell::to_value`] is
/// byte-identical across thread counts — the property
/// `tests/determinism.rs` pins.
pub fn compact_grid_metered(
    workloads: &[Workload],
    machines: &[Machine],
    configs: &[CompactConfig],
) -> Vec<MeteredCell> {
    preflight(workloads, machines);
    run_many_metered(
        grid_inputs(workloads, machines, configs),
        |(w, m, ci, c)| solve_cell(w, m, ci, c),
    )
    .into_iter()
    .map(|(cell, metrics)| MeteredCell { cell, metrics })
    .collect()
}

/// Fans one event stream out to two sinks, in order.  Lets a grid cell
/// collect its counter registry *and* its communication profile from a
/// single instrumented run.
pub struct Tee<A: Sink, B: Sink>(pub A, pub B);

impl<A: Sink, B: Sink> Sink for Tee<A, B> {
    fn event(&mut self, ev: Event) {
        self.0.event(ev.clone());
        self.1.event(ev);
    }
}

/// One cell of a [`compact_grid_profiled`] sweep: the metered cell
/// plus the communication profile of its final best schedule — the
/// input the sweep grid dashboard renders one heatmap tile from.
#[derive(Clone, Debug)]
pub struct ProfiledCell {
    /// The schedule-length outcome, as in [`compact_grid`].
    pub cell: GridCell,
    /// Hot-path counters recorded while solving this cell.
    pub metrics: Metrics,
    /// Per-edge traffic attribution and link loads of the best
    /// schedule, folded from the same event stream as the counters.
    pub profile: CommProfile,
    /// Whether the machine routes (`ccs_profile::routable`): on
    /// routable cells the dashboard's heatmaps carry conservation
    /// totals that `report-check` re-verifies.
    pub routable: bool,
}

/// [`compact_grid_metered`] plus a per-cell [`CommProfile`]: each cell
/// runs once under a [`Tee`] of the metrics and profile sinks, so the
/// dashboard's heatmaps and the BENCH counters describe the *same*
/// run.  Profiles fold the deterministic event stream, so the sweep
/// stays byte-identical across thread counts.
pub fn compact_grid_profiled(
    workloads: &[Workload],
    machines: &[Machine],
    configs: &[CompactConfig],
) -> Vec<ProfiledCell> {
    preflight(workloads, machines);
    run_many(
        grid_inputs(workloads, machines, configs),
        |(w, m, ci, c)| {
            let (cell, tee) =
                ccs_trace::with_sink(Tee(MetricsSink::new(), ProfileBuilder::new()), || {
                    solve_cell(w, m, ci, c)
                });
            let Tee(metrics, builder) = tee;
            ProfiledCell {
                cell,
                metrics: metrics.into_metrics(),
                profile: builder.finish(m),
                routable: ccs_profile::routable(m),
            }
        },
    )
}

/// Pass A preflight: every workload x machine pair must be free of
/// analyzer *errors* before the sweep burns CPU on it.  Runs once per
/// grid, sequentially, outside every timed region — experiment
/// binaries call [`compact_grid`] from untimed setup code, and the
/// hot-path benchmark does not use grids at all.
///
/// # Panics
///
/// Panics with the rendered diagnostics when any pair has errors; an
/// experiment grid with an illegal cell would otherwise die later with
/// a less helpful message from inside the scheduler.
fn preflight(workloads: &[Workload], machines: &[Machine]) {
    for w in workloads {
        let g = w.build();
        for m in machines {
            let report = ccs_analyze::analyze(&g, m);
            assert!(
                !report.has_errors(),
                "preflight: workload {:?} on {} has analyzer errors:\n{}",
                w.name,
                m.name(),
                report.render_human()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_many_preserves_input_order() {
        let out = run_many((0..257usize).collect(), |i| i * 3);
        assert_eq!(out, (0..257).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn metered_grid_matches_plain_grid_and_counts_work() {
        let workloads: Vec<Workload> = ccs_workloads::all_workloads()
            .into_iter()
            .filter(|w| w.name == "fig1")
            .collect();
        let machines = vec![Machine::mesh(2, 2)];
        let configs = vec![CompactConfig::default()];
        let plain = compact_grid(&workloads, &machines, &configs);
        let metered = compact_grid_metered(&workloads, &machines, &configs);
        assert_eq!(plain.len(), metered.len());
        for (p, m) in plain.iter().zip(&metered) {
            assert_eq!(p.workload, m.cell.workload);
            assert_eq!(p.machine, m.cell.machine);
            assert_eq!((p.initial, p.best), (m.cell.initial, m.cell.best));
            assert_eq!((p.bound, p.bound_kind), (m.cell.bound, m.cell.bound_kind));
            assert!(p.bound >= 1, "every workload has a positive bound");
            assert!(p.bound <= u64::from(p.best), "bound must be sound");
            // The cell actually recorded scheduler work and traffic.
            assert!(m.metrics.counters["edges_swept"] > 0);
            assert!(m.metrics.counters["traffic_events"] > 0);
            let v = m.to_value();
            assert_eq!(v["workload"].as_str(), Some("fig1"));
            assert_eq!(v["bound"].as_u64(), Some(p.bound));
            assert!(v["gap_pct"].as_f64().is_some());
            assert!(v["counters"]["placements"].as_u64().unwrap() > 0);
            assert!(v.get("histograms").is_none(), "histograms must not leak");
        }
        // Metering must not leak a sink past the sweep.
        assert!(!ccs_trace::installed());
    }

    #[test]
    fn profiled_grid_carries_matching_metrics_and_profiles() {
        let workloads: Vec<Workload> = ccs_workloads::all_workloads()
            .into_iter()
            .filter(|w| w.name == "fig1")
            .collect();
        let machines = vec![Machine::mesh(2, 2)];
        let configs = vec![CompactConfig::default()];
        let metered = compact_grid_metered(&workloads, &machines, &configs);
        let profiled = compact_grid_profiled(&workloads, &machines, &configs);
        assert_eq!(metered.len(), profiled.len());
        for (m, p) in metered.iter().zip(&profiled) {
            // The tee'd run is the same run: identical outcome and
            // identical counters as the metrics-only sweep.
            assert_eq!((m.cell.initial, m.cell.best), (p.cell.initial, p.cell.best));
            assert_eq!(m.metrics.counters, p.metrics.counters);
            // And the profile describes that run's best schedule.
            assert_eq!(p.profile.best_length, p.cell.best);
            assert_eq!(p.profile.initial_length, p.cell.initial);
            assert!(!p.profile.edges.is_empty(), "fig1 has edges");
        }
        assert!(!ccs_trace::installed());
    }

    #[test]
    fn compact_grid_matches_sequential_loop() {
        let workloads: Vec<Workload> = ccs_workloads::all_workloads()
            .into_iter()
            .filter(|w| w.name == "fig1" || w.name == "iir")
            .collect();
        let machines = vec![Machine::linear_array(4), Machine::complete(4)];
        let configs = vec![CompactConfig::default()];
        let grid = compact_grid(&workloads, &machines, &configs);
        assert_eq!(grid.len(), 4);
        let mut ix = 0;
        for w in &workloads {
            for m in &machines {
                let r = cyclo_compact(&w.build(), m, configs[0]).expect("legal");
                assert_eq!(grid[ix].workload, w.name);
                assert_eq!(grid[ix].machine, m.name());
                assert_eq!(grid[ix].initial, r.initial_length);
                assert_eq!(grid[ix].best, r.best_length);
                ix += 1;
            }
        }
    }
}
